"""White-box unit tests for the Replication Manager's plumbing.

A minimal two-processor world isolates the manager's own logic:
identifier assignment, normalisation, reply correlation, spoof
rejection, and base-group handling.
"""

import pytest

from repro.core.config import ImmuneConfig, SurvivabilityCase
from repro.core.identifiers import (
    BASE_GROUP,
    ImmuneMessage,
    KIND_INVOCATION,
    KIND_RESPONSE,
    KIND_VALUE_FAULT_VOTE,
)
from repro.core.immune import ImmuneSystem
from repro.core.value_fault import ValueFaultVote
from repro.orb.giop import RequestMessage, decode_message
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef

PING_IDL = InterfaceDef(
    "Ping",
    [
        OperationDef("ping", [ParamDef("n", "long")], result="long"),
        OperationDef("poke", [ParamDef("n", "long")], oneway=True),
    ],
)


class PingServant:
    def ping(self, n):
        return n + 1

    def poke(self, n):
        pass


@pytest.fixture
def world():
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=19)
    immune = ImmuneSystem(num_processors=4, config=config)
    server = immune.deploy("ping", PING_IDL, lambda pid: PingServant(), [0, 1])
    client = immune.deploy_client("caller", [2, 3])
    immune.start()
    return immune, server, client


def captured_multicasts(immune, pid):
    """Tap endpoint.multicast on processor pid; returns the capture list."""
    captured = []
    endpoint = immune.endpoints[pid]
    original = endpoint.multicast

    def spy(dest_group, payload):
        captured.append((dest_group, ImmuneMessage.decode(payload)))
        original(dest_group, payload)

    endpoint.multicast = spy
    return captured


def test_operation_numbers_increase_per_source_group(world):
    immune, server, client = world
    captured = captured_multicasts(immune, 2)
    stubs = dict(immune.client_stubs(client, PING_IDL, server))
    stubs[2].poke(1)
    stubs[2].poke(2)
    stubs[2].ping(3, reply_to=lambda _r: None)
    immune.run(until=1.0)
    invocations = [m for g, m in captured if m.kind == KIND_INVOCATION]
    assert [m.op_num for m in invocations] == [0, 1, 2]
    assert all(m.source_group == "caller" for m in invocations)
    assert all(m.target_group == "ping" for m in invocations)


def test_giop_request_id_is_normalised_to_op_num(world):
    immune, server, client = world
    captured = captured_multicasts(immune, 2)
    stubs = dict(immune.client_stubs(client, PING_IDL, server))
    # Burn some local GIOP request ids so they diverge from op numbers.
    orb = immune.orbs[2]
    for _ in range(5):
        orb._next_request_id += 1
    stubs[2].ping(7, reply_to=lambda _r: None)
    immune.run(until=1.0)
    (invocation,) = [m for g, m in captured if m.kind == KIND_INVOCATION]
    inner = decode_message(invocation.body)
    assert isinstance(inner, RequestMessage)
    assert inner.request_id == invocation.op_num == 0


def test_reply_correlated_back_to_original_request_id(world):
    immune, server, client = world
    stubs = dict(immune.client_stubs(client, PING_IDL, server))
    orb = immune.orbs[2]
    orb._next_request_id = 42  # client replica's local id space differs
    results = []
    stubs[2].ping(1, reply_to=results.append)
    stubs[3].ping(1, reply_to=lambda _r: None)
    immune.run(until=2.0)
    assert results == [2]
    assert orb.stats["replies_matched"] == 1


def test_spoofed_replica_proc_is_dropped(world):
    immune, server, client = world
    manager = immune.managers[0]
    before = manager.stats["delivered_to_orb"]
    # Claim to be processor 3 while actually delivered from sender 2.
    spoof = ImmuneMessage(KIND_INVOCATION, "caller", 99, 3, "ping", b"junk")
    manager._on_deliver(2, 1, "ping", spoof.encode())
    assert manager.stats["delivered_to_orb"] == before


def test_mismatched_target_group_is_dropped(world):
    immune, server, client = world
    manager = immune.managers[0]
    message = ImmuneMessage(KIND_INVOCATION, "caller", 99, 2, "other-group", b"junk")
    before = manager.stats["delivered_to_orb"]
    manager._on_deliver(2, 1, "ping", message.encode())
    assert manager.stats["delivered_to_orb"] == before


def test_unhosted_group_is_filtered(world):
    immune, server, client = world
    manager = immune.managers[3]  # hosts only the client group
    message = ImmuneMessage(KIND_INVOCATION, "caller", 0, 2, "ping", b"junk")
    before = manager.stats["delivered_to_orb"]
    manager._on_deliver(2, 1, "ping", message.encode())
    assert manager.stats["delivered_to_orb"] == before


def test_value_fault_votes_are_deduplicated(world):
    immune, server, client = world
    manager = immune.managers[3]
    vote = ValueFaultVote(0, "caller", 5, "ping", [(2, b"a"), (3, b"b"), (2, b"a")])
    wrapped_a = ImmuneMessage(
        KIND_VALUE_FAULT_VOTE, "caller", 5, 0, BASE_GROUP, vote.encode()
    )
    wrapped_b = ImmuneMessage(
        KIND_VALUE_FAULT_VOTE, "caller", 5, 1, BASE_GROUP,
        ValueFaultVote(1, "caller", 5, "ping", vote.entries).encode(),
    )
    manager._on_deliver(0, 1, BASE_GROUP, wrapped_a.encode())
    manager._on_deliver(1, 2, BASE_GROUP, wrapped_b.encode())
    assert manager._vfd.stats["votes"] == 1
    assert manager._vfd.stats["duplicates"] == 1


def test_outgoing_requires_source_attribution(world):
    immune, server, client = world
    from repro.core.manager import ReplicationError

    manager = immune.managers[2]
    frame = RequestMessage(0, b"ping", "poke", b"", response_expected=False).encode()
    with pytest.raises(ReplicationError):
        manager.outgoing_iiop(server.reference, frame, None)


def test_garbage_outgoing_frame_ignored(world):
    immune, server, client = world
    manager = immune.managers[2]
    before = manager.stats["invocations_sent"]
    manager.outgoing_iiop(server.reference, b"not a giop frame", b"caller")
    assert manager.stats["invocations_sent"] == before
