"""Validation of the WAN federation knobs and the inter-site topology.

Every federation tunable must reject nonsense with an error that names
the field, the accepted range, and the offending value — duplicate
site names, holes in an asymmetric link matrix, negative latency, and
a site-gateway degree too small to outvote one Byzantine replica all
fail at construction, not deep inside simulation setup.
"""

import pytest

from repro.cluster.config import ClusterConfig, ClusterConfigError
from repro.core.config import SurvivabilityCase
from repro.sim.faults import FaultPlan
from repro.sim.network import SimulationError, WanTopology
from repro.wan import SiteSpec, WanConfig, WanConfigError


def test_defaults_are_valid():
    config = WanConfig()
    assert config.site_names() == ("alpha", "beta")
    assert config.wan_gateway_degree == 3
    assert config.pid_base(0) == 0
    assert config.pid_base(1) == 10
    assert config.ring_base(1) == 1


def test_duplicate_site_names_rejected():
    with pytest.raises(WanConfigError) as excinfo:
        WanConfig(sites=("alpha", "beta", "alpha"))
    assert "duplicate site name" in str(excinfo.value)
    assert "alpha" in str(excinfo.value)


def test_single_site_rejected():
    with pytest.raises(WanConfigError) as excinfo:
        WanConfig(sites=("alone",))
    assert "at least 2 sites" in str(excinfo.value)


@pytest.mark.parametrize("name", ["", None, 7])
def test_bad_site_name_rejected(name):
    with pytest.raises(WanConfigError) as excinfo:
        SiteSpec(name)
    assert "non-empty string" in str(excinfo.value)


@pytest.mark.parametrize("value", [0, -1, 4097, "2", True])
def test_site_spec_ranges_named(value):
    with pytest.raises(WanConfigError) as excinfo:
        SiteSpec("alpha", num_rings=value)
    message = str(excinfo.value)
    assert "num_rings[alpha]" in message
    assert "1" in message and "4096" in message


@pytest.mark.parametrize("degree", [1, 2])
def test_voting_needs_three_site_gateways(degree):
    with pytest.raises(WanConfigError) as excinfo:
        WanConfig(wan_gateway_degree=degree)
    message = str(excinfo.value)
    assert "wan_gateway_degree" in message
    assert ">= 3" in message
    # a non-voting case accepts smaller degrees
    WanConfig(case=SurvivabilityCase.ACTIVE_REPLICATION, wan_gateway_degree=degree)


def test_cluster_config_rejects_small_wan_gateway_degree():
    with pytest.raises(ClusterConfigError) as excinfo:
        ClusterConfig(wan_gateway_degree=2)
    assert "wan_gateway_degree" in str(excinfo.value)


def test_asymmetric_matrix_missing_entry_rejected():
    latency = {("alpha", "beta"): 0.010}  # no return route
    with pytest.raises(WanConfigError) as excinfo:
        WanConfig(latency=latency)
    message = str(excinfo.value)
    assert "latency" in message
    assert "beta" in message and "alpha" in message


def test_negative_latency_rejected():
    with pytest.raises(WanConfigError) as excinfo:
        WanConfig(latency=-0.010)
    assert "latency" in str(excinfo.value)


def test_wan_gateway_pids_are_backbone_reserved():
    config = WanConfig(sites=("alpha", "beta"))
    alpha = config.cluster_config(0)
    beta = config.cluster_config(1)
    assert len(alpha.wan_gateway_pids()) == 3
    # disjoint global numbering: beta's pids start above alpha's range
    assert min(beta.ring_pids(0)) >= alpha.procs_per_ring * alpha.num_rings
    # WAN gateway hosts are not placement workers
    for pid in alpha.wan_gateway_pids():
        assert pid not in alpha.worker_pids(0)


def test_topology_transit_and_rtt():
    topology = WanTopology(
        ("alpha", "beta"),
        latency={("alpha", "beta"): 0.030, ("beta", "alpha"): 0.010},
        bandwidth_bps=8_000_000,
        header_bytes=0,
    )
    assert topology.transit_time("alpha", "beta", 1000) == pytest.approx(0.031)
    assert topology.rtt("alpha", "beta") == pytest.approx(0.040)


def test_topology_rejects_unknown_and_duplicate_sites():
    with pytest.raises(SimulationError):
        WanTopology(("alpha", "alpha"))
    topology = WanTopology(("alpha", "beta"))
    with pytest.raises(SimulationError):
        topology.transit_time("alpha", "nowhere", 10)


def test_partition_window_blocks_then_heals():
    plan = FaultPlan()
    plan.schedule_partition("alpha", "beta", start=1.0, heal=2.0)
    topology = WanTopology(("alpha", "beta", "gamma"), fault_plan=plan)
    assert not topology.partitioned("alpha", "beta", 0.5)
    assert topology.partitioned("alpha", "beta", 1.5)
    assert topology.partitioned("beta", "alpha", 1.5)  # symmetric
    assert not topology.partitioned("alpha", "gamma", 1.5)  # scoped
    assert not topology.partitioned("alpha", "beta", 2.5)  # healed


def test_site_isolation_partitions_from_every_peer():
    plan = FaultPlan()
    plan.schedule_partition("gamma", start=1.0, heal=None)
    topology = WanTopology(("alpha", "beta", "gamma"), fault_plan=plan)
    assert topology.partitioned("gamma", "alpha", 5.0)
    assert topology.partitioned("beta", "gamma", 5.0)
    assert not topology.partitioned("alpha", "beta", 5.0)
