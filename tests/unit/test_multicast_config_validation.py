"""Validation of the MulticastConfig knobs (the paper's j, pipelining).

Every tunable that the batch-signature pipeline added — and the paper's
``j`` (messages per token visit) that predated it — must reject
nonsense values with an error message that names the field, the
accepted range, and the offending value, so a misconfigured experiment
fails at construction instead of deadlocking a ring.
"""

import pytest

from repro.core.config import ImmuneConfig, SurvivabilityCase
from repro.multicast.config import (
    MulticastConfig,
    MulticastConfigError,
    SecurityLevel,
)


def test_defaults_are_valid():
    config = MulticastConfig()
    assert config.max_messages_per_token_visit == 6
    assert config.batch_signatures is False
    assert config.signature_batch_visits == 4
    assert config.pipeline_depth == 4
    assert config.fragment_payload_bytes == 4096


@pytest.mark.parametrize("value", [0, -1, 4097, "6", 6.0, None, True])
def test_j_rejects_out_of_range_and_non_integers(value):
    with pytest.raises(MulticastConfigError) as excinfo:
        MulticastConfig(max_messages_per_token_visit=value)
    message = str(excinfo.value)
    assert "max_messages_per_token_visit" in message
    assert "j" in message  # names the paper's parameter
    assert repr(value) in message or str(value) in message


@pytest.mark.parametrize(
    "field,low,high",
    [
        ("signature_batch_visits", 1, 64),
        ("pipeline_depth", 1, 128),
        ("fragment_payload_bytes", 64, 1 << 20),
    ],
)
def test_pipeline_knobs_enforce_their_ranges(field, low, high):
    MulticastConfig(**{field: low})
    MulticastConfig(**{field: high})
    for bad in (low - 1, high + 1):
        with pytest.raises(MulticastConfigError) as excinfo:
            MulticastConfig(**{field: bad})
        message = str(excinfo.value)
        assert field in message
        assert str(low) in message and str(high) in message
        assert str(bad) in message


def test_batch_signatures_must_be_bool():
    with pytest.raises(MulticastConfigError) as excinfo:
        MulticastConfig(batch_signatures=1)
    assert "batch_signatures" in str(excinfo.value)


def test_batch_signatures_requires_signature_security():
    for security in (SecurityLevel.NONE, SecurityLevel.DIGESTS):
        with pytest.raises(MulticastConfigError) as excinfo:
            MulticastConfig(security=security, batch_signatures=True)
        message = str(excinfo.value)
        assert "batch_signatures" in message
        assert "SIGNATURES" in message
        assert security.name in message
    config = MulticastConfig(
        security=SecurityLevel.SIGNATURES, batch_signatures=True
    )
    assert config.batch_signatures is True


def test_immune_config_passes_pipeline_knobs_through():
    config = ImmuneConfig(
        case=SurvivabilityCase.FULL_SURVIVABILITY,
        batch_signatures=True,
        signature_batch_visits=8,
        pipeline_depth=2,
        fragment_payload_bytes=1024,
    )
    assert config.batch_signatures is True
    assert config.multicast.batch_signatures is True
    assert config.multicast.signature_batch_visits == 8
    assert config.multicast.pipeline_depth == 2
    assert config.multicast.fragment_payload_bytes == 1024
