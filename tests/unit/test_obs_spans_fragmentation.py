"""Span stages and critpath sums under MessageFragment split/reassembly.

Forcing a tiny ``fragment_payload_bytes`` makes every invocation and
reply cross the ring as multiple :class:`MessageFragment` frames.  The
span machinery must not notice: an invocation's stage set is the same
whether its bytes rode one frame or eight, and the critical-path
decomposition still sums to the end-to-end latency exactly — the
reassembly wait shows up inside the token stages, never as a missing
or phantom stage.
"""

from repro.bench.latency import ECHO_IDL, EchoServant
from repro.core.config import ImmuneConfig, SurvivabilityCase
from repro.core.immune import ImmuneSystem
from repro.obs import Observability
from repro.obs.critpath import attribute_span, _TokenEvidence
from repro.obs.forensics import ForensicsHub, merge_timeline


def observed_run(fragment_payload_bytes, seed=3, operations=4):
    obs = Observability(forensics=ForensicsHub())
    config = ImmuneConfig(
        case=SurvivabilityCase.FULL_SURVIVABILITY,
        seed=seed,
        fragment_payload_bytes=fragment_payload_bytes,
    )
    immune = ImmuneSystem(num_processors=6, config=config, obs=obs)
    server = immune.deploy("echo", ECHO_IDL, lambda pid: EchoServant(), [0, 1, 2])
    client = immune.deploy_client("driver", [3, 4, 5])
    immune.start()
    stubs = immune.client_stubs(client, ECHO_IDL, server)
    replies = []
    for k in range(operations):

        def fire(k=k):
            for _pid, stub in stubs:
                stub.echo(k, reply_to=replies.append)

        immune.scheduler.at(0.1 + 0.05 * k, fire, label="test.workload")
    immune.run(until=1.5)
    assert replies
    return immune, obs


def stage_sets(obs):
    return {
        span.key: tuple(stage for stage, _ in span.breakdown())
        for span in obs.spans.closed_spans()
    }


def test_tiny_fragment_threshold_actually_fragments():
    immune, obs = observed_run(fragment_payload_bytes=64)
    assert obs.registry.total("multicast.fragments_sent") > 0
    # and the default threshold sends the same workload unfragmented
    immune2, obs2 = observed_run(fragment_payload_bytes=4096)
    assert obs2.registry.total("multicast.fragments_sent") == 0


def test_fragmented_spans_keep_the_same_stage_set():
    _, whole = observed_run(fragment_payload_bytes=4096)
    _, split = observed_run(fragment_payload_bytes=64)
    whole_stages = stage_sets(whole)
    split_stages = stage_sets(split)
    # Same invocations closed, and each walked the identical stage
    # sequence — fragmentation adds frames, never span stages.
    assert set(whole_stages) == set(split_stages)
    assert whole_stages == split_stages
    for stages in split_stages.values():
        assert stages[0] == "intercepted"
        assert stages[-1] == "reply_voted"


def test_fragmented_critpath_sums_exactly():
    immune, obs = observed_run(fragment_payload_bytes=64)
    evidence = _TokenEvidence(merge_timeline(obs.forensics))
    spans = obs.spans.closed_spans()
    assert spans
    for span in spans:
        rows = attribute_span(span, evidence, cost_model=immune.config.crypto_costs)
        # exact equality, not approx: the decomposition is accounting,
        # and reassembly wait must be absorbed without leaking time
        assert sum(seconds for _, _, seconds in rows) == span.end_to_end()
        deltas = dict((stage, delta) for stage, delta in span.breakdown())
        for stage, _cause, seconds in rows:
            assert seconds >= 0.0
            assert seconds <= deltas[stage] + 1e-12
