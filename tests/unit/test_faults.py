"""Unit tests for fault plans (loss, corruption, delay, crash windows)."""

import random

import pytest

from repro.sim.faults import FaultPlan, LinkFaults


@pytest.fixture
def rng():
    return random.Random(1)


def test_default_plan_is_benign(rng):
    plan = FaultPlan()
    assert not plan.should_drop(0, 1, 0.0, rng)
    assert not plan.should_corrupt(0, 1, 0.0, rng)
    assert plan.extra_delay(0, 1, 0.0, rng) == 0.0


def test_certain_loss(rng):
    plan = FaultPlan(default=LinkFaults(loss_prob=1.0))
    assert all(plan.should_drop(0, 1, 0.0, rng) for _ in range(10))


def test_probabilistic_loss_is_roughly_calibrated(rng):
    plan = FaultPlan(default=LinkFaults(loss_prob=0.3))
    drops = sum(plan.should_drop(0, 1, 0.0, rng) for _ in range(2000))
    assert 450 < drops < 750  # ~30% +/- margin


def test_window_bounds(rng):
    plan = FaultPlan(default=LinkFaults(loss_prob=1.0), active_from=1.0, active_until=2.0)
    assert not plan.should_drop(0, 1, 0.5, rng)
    assert plan.should_drop(0, 1, 1.0, rng)
    assert plan.should_drop(0, 1, 1.999, rng)
    assert not plan.should_drop(0, 1, 2.0, rng)


def test_per_link_overrides(rng):
    plan = FaultPlan()
    plan.set_link(0, 1, LinkFaults(loss_prob=1.0, extra_delay=0.5))
    assert plan.should_drop(0, 1, 0.0, rng)
    assert not plan.should_drop(1, 0, 0.0, rng)  # directed
    assert plan.extra_delay(0, 1, 0.0, rng) == 0.5
    assert plan.extra_delay(1, 0, 0.0, rng) == 0.0


def test_egress_helper_covers_all_destinations(rng):
    plan = FaultPlan()
    plan.set_processor_egress(2, LinkFaults(corrupt_prob=1.0), processor_ids=range(4))
    for dst in (0, 1, 3):
        assert plan.should_corrupt(2, dst, 0.0, rng)
    assert (2, 2) not in plan.links
    assert not plan.should_corrupt(0, 1, 0.0, rng)


def test_crash_schedule_recorded_and_chainable(rng):
    plan = FaultPlan().schedule_crash(1, 2.0).schedule_crash(3, 4.0)
    assert plan.crash_times == {1: 2.0, 3: 4.0}


def test_extra_delay_outside_window_is_zero(rng):
    plan = FaultPlan(
        default=LinkFaults(extra_delay=0.1), active_from=1.0, active_until=2.0
    )
    assert plan.extra_delay(0, 1, 0.0, rng) == 0.0
    assert plan.extra_delay(0, 1, 1.5, rng) == 0.1
