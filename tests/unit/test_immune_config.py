"""Unit tests for survivability cases and resilience invariants."""

import pytest

from repro.core.config import (
    ConfigError,
    ImmuneConfig,
    SurvivabilityCase,
    max_faulty_processors,
    required_correct_processors,
)
from repro.multicast.config import SecurityLevel


def test_case_properties():
    assert not SurvivabilityCase.UNREPLICATED.replicated
    assert SurvivabilityCase.ACTIVE_REPLICATION.replicated
    assert not SurvivabilityCase.ACTIVE_REPLICATION.voting
    assert SurvivabilityCase.MAJORITY_VOTING.voting
    assert SurvivabilityCase.FULL_SURVIVABILITY.voting


def test_case_security_levels():
    assert (
        SurvivabilityCase.ACTIVE_REPLICATION.security_level is SecurityLevel.NONE
    )
    assert SurvivabilityCase.MAJORITY_VOTING.security_level is SecurityLevel.DIGESTS
    assert (
        SurvivabilityCase.FULL_SURVIVABILITY.security_level
        is SecurityLevel.SIGNATURES
    )


def test_required_correct_matches_paper_formula():
    # ceil((2n+1)/3): the paper's section 3.1 requirement.
    assert required_correct_processors(4) == 3
    assert required_correct_processors(6) == 5
    assert required_correct_processors(7) == 5
    # and the faulty bound k <= floor((n-1)/3)
    assert max_faulty_processors(4) == 1
    assert max_faulty_processors(6) == 1
    assert max_faulty_processors(7) == 2
    assert max_faulty_processors(10) == 3


def test_validate_system_rejects_too_many_faults():
    config = ImmuneConfig()
    config.validate_system(6, expected_faulty=1)  # fine
    with pytest.raises(ConfigError):
        config.validate_system(6, expected_faulty=2)
    with pytest.raises(ConfigError):
        config.validate_system(0)


def test_validate_placement_one_replica_per_processor():
    config = ImmuneConfig()
    config.validate_placement("g", [0, 1, 2], 6)
    with pytest.raises(ConfigError):
        config.validate_placement("g", [0, 0, 1], 6)


def test_validate_placement_unknown_processor():
    config = ImmuneConfig()
    with pytest.raises(ConfigError):
        config.validate_placement("g", [0, 9], 6)


def test_validate_placement_voting_needs_replicas():
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY)
    with pytest.raises(ConfigError):
        config.validate_placement("g", [0], 6)
    # The unreplicated case accepts singletons.
    ImmuneConfig(case=SurvivabilityCase.UNREPLICATED).validate_placement("g", [0], 6)


def test_config_wires_multicast_security():
    config = ImmuneConfig(case=SurvivabilityCase.MAJORITY_VOTING)
    assert config.multicast.security is SecurityLevel.DIGESTS
    config4 = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY)
    assert config4.multicast.security is SecurityLevel.SIGNATURES


def test_config_passes_j_and_modulus_through():
    config = ImmuneConfig(messages_per_token_visit=4, modulus_bits=512)
    assert config.multicast.max_messages_per_token_visit == 4
    assert config.crypto_costs.modulus_bits == 512


def test_config_digest_selection():
    from repro.crypto.md4 import md4_digest
    from repro.crypto.md5 import md5_digest

    assert ImmuneConfig().digest_fn() is md4_digest
    assert ImmuneConfig(digest="md5").digest_fn() is md5_digest
    with pytest.raises(ConfigError):
        ImmuneConfig(digest="sha1")


def test_md5_deployment_end_to_end():
    from repro.core.immune import ImmuneSystem
    from repro.orb.idl import InterfaceDef, OperationDef, ParamDef

    idl = InterfaceDef("Ping", [OperationDef("ping", [ParamDef("n", "long")], oneway=True)])

    class PingServant:
        def __init__(self):
            self.pings = []

        def ping(self, n):
            self.pings.append(n)

    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, digest="md5", seed=4)
    immune = ImmuneSystem(num_processors=6, config=config)
    server = immune.deploy("ping", idl, lambda pid: PingServant(), [0, 1, 2])
    client = immune.deploy_client("pinger", [3, 4, 5])
    immune.start()
    for _, stub in immune.client_stubs(client, idl, server):
        stub.ping(7)
    immune.run(until=2.0)
    for servant in server.servants.values():
        assert servant.pings == [7]
