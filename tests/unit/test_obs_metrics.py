"""Unit tests for the metrics registry."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim.scheduler import Scheduler


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("net.frames_sent", proc=0)
    counter.inc()
    counter.inc(4)
    assert registry.value("net.frames_sent", proc=0) == 5
    gauge = registry.gauge("queue_depth", proc=0)
    gauge.set(7)
    gauge.add(-2)
    assert registry.value("queue_depth", proc=0) == 5


def test_labels_identify_instances():
    registry = MetricsRegistry()
    a = registry.counter("sent", proc=0)
    b = registry.counter("sent", proc=1)
    assert a is not b
    assert a is registry.counter("sent", proc=0)
    a.inc(2)
    b.inc(3)
    assert registry.total("sent") == 5
    assert [dict(m.labels) for m in registry.family("sent")] == [
        {"proc": 0},
        {"proc": 1},
    ]
    # A never-created instance reads as zero.
    assert registry.value("sent", proc=9) == 0


def test_kind_conflict_is_an_error():
    registry = MetricsRegistry()
    registry.counter("x", proc=0)
    with pytest.raises(ValueError):
        registry.gauge("x", proc=0)


def test_histogram_quantiles_on_known_distribution():
    hist = Histogram("lat", ())
    values = [0.001 * n for n in range(1, 1001)]  # 1ms .. 1s uniform
    for v in values:
        hist.observe(v)
    assert hist.count == 1000
    assert hist.min == pytest.approx(0.001)
    assert hist.max == pytest.approx(1.0)
    assert hist.mean == pytest.approx(sum(values) / 1000)
    # Log-bucketed quantiles: relative error bounded by the bucket base.
    for q, exact in [(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)]:
        estimate = hist.quantile(q)
        assert abs(estimate - exact) / exact < Histogram.BASE - 1.0 + 0.02
    assert hist.quantile(0.0) == hist.min
    assert hist.quantile(1.0) == hist.max


def test_histogram_handles_zero_and_negative():
    hist = Histogram("deltas", ())
    hist.observe(0.0)
    hist.observe(-1.0)
    hist.observe(2.0)
    assert hist.count == 3
    assert hist.quantile(0.4) == 0.0  # the <=0 bucket sorts first
    d = hist.to_dict()
    assert d["min"] == -1.0 and d["max"] == 2.0


def test_empty_histogram_is_safe():
    hist = Histogram("empty", ())
    assert hist.quantile(0.5) == 0.0
    assert hist.mean == 0.0
    assert hist.to_dict()["count"] == 0


def test_snapshot_is_sorted_and_plain():
    registry = MetricsRegistry()
    registry.counter("b", proc=1).inc()
    registry.counter("a", proc=0).inc(2)
    registry.histogram("h").observe(0.5)
    snap = registry.snapshot()
    assert [entry["name"] for entry in snap] == ["a", "b", "h"]
    assert snap[0] == {"name": "a", "kind": "counter", "labels": {"proc": 0}, "value": 2}
    assert snap[2]["kind"] == "histogram"
    assert snap[2]["count"] == 1


def test_collectors_refresh_derived_metrics():
    registry = MetricsRegistry()
    state = {"depth": 3}
    registry.add_collector(
        lambda reg: reg.gauge("queue_depth").set(state["depth"])
    )
    registry.collect()
    assert registry.value("queue_depth") == 3
    state["depth"] = 9
    registry.collect()
    assert registry.value("queue_depth") == 9


def test_sample_every_records_time_series():
    scheduler = Scheduler()
    registry = MetricsRegistry()
    counter = registry.counter("ticks")
    scheduler.after(0.25, counter.inc, label="tick")
    scheduler.after(0.75, counter.inc, label="tick")
    registry.sample_every(scheduler, period=0.5, max_samples=3)
    scheduler.run(until=10.0)
    times = [t for t, _snap in registry.samples]
    assert times == [0.5, 1.0, 1.5]
    first = {e["name"]: e for e in registry.samples[0][1]}
    last = {e["name"]: e for e in registry.samples[-1][1]}
    assert first["ticks"]["value"] == 1
    assert last["ticks"]["value"] == 2
