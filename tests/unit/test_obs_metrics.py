"""Unit tests for the metrics registry."""

import warnings

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim.scheduler import Scheduler


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("net.frames_sent", proc=0)
    counter.inc()
    counter.inc(4)
    assert registry.value("net.frames_sent", proc=0) == 5
    gauge = registry.gauge("queue_depth", proc=0)
    gauge.set(7)
    gauge.add(-2)
    assert registry.value("queue_depth", proc=0) == 5


def test_labels_identify_instances():
    registry = MetricsRegistry()
    a = registry.counter("sent", proc=0)
    b = registry.counter("sent", proc=1)
    assert a is not b
    assert a is registry.counter("sent", proc=0)
    a.inc(2)
    b.inc(3)
    assert registry.total("sent") == 5
    assert [dict(m.labels) for m in registry.family("sent")] == [
        {"proc": 0},
        {"proc": 1},
    ]
    # A never-created instance reads as zero.
    assert registry.value("sent", proc=9) == 0


def test_kind_conflict_is_an_error():
    registry = MetricsRegistry()
    registry.counter("x", proc=0)
    with pytest.raises(ValueError):
        registry.gauge("x", proc=0)


def test_histogram_quantiles_on_known_distribution():
    hist = Histogram("lat", ())
    values = [0.001 * n for n in range(1, 1001)]  # 1ms .. 1s uniform
    for v in values:
        hist.observe(v)
    assert hist.count == 1000
    assert hist.min == pytest.approx(0.001)
    assert hist.max == pytest.approx(1.0)
    assert hist.mean == pytest.approx(sum(values) / 1000)
    # Log-bucketed quantiles: relative error bounded by the bucket base.
    for q, exact in [(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)]:
        estimate = hist.quantile(q)
        assert abs(estimate - exact) / exact < Histogram.BASE - 1.0 + 0.02
    assert hist.quantile(0.0) == hist.min
    assert hist.quantile(1.0) == hist.max


def test_histogram_handles_zero_and_negative():
    hist = Histogram("deltas", ())
    hist.observe(0.0)
    hist.observe(-1.0)
    hist.observe(2.0)
    assert hist.count == 3
    assert hist.quantile(0.4) == 0.0  # the <=0 bucket sorts first
    d = hist.to_dict()
    assert d["min"] == -1.0 and d["max"] == 2.0


def test_empty_histogram_is_safe():
    hist = Histogram("empty", ())
    assert hist.quantile(0.5) == 0.0
    assert hist.mean == 0.0
    assert hist.to_dict()["count"] == 0


def test_snapshot_is_sorted_and_plain():
    registry = MetricsRegistry()
    registry.counter("b", proc=1).inc()
    registry.counter("a", proc=0).inc(2)
    registry.histogram("h").observe(0.5)
    snap = registry.snapshot()
    assert [entry["name"] for entry in snap] == ["a", "b", "h"]
    assert snap[0] == {"name": "a", "kind": "counter", "labels": {"proc": 0}, "value": 2}
    assert snap[2]["kind"] == "histogram"
    assert snap[2]["count"] == 1


def test_collectors_refresh_derived_metrics():
    registry = MetricsRegistry()
    state = {"depth": 3}
    registry.add_collector(
        lambda reg: reg.gauge("queue_depth").set(state["depth"])
    )
    registry.collect()
    assert registry.value("queue_depth") == 3
    state["depth"] = 9
    registry.collect()
    assert registry.value("queue_depth") == 9


def test_sample_every_records_time_series():
    scheduler = Scheduler()
    registry = MetricsRegistry()
    counter = registry.counter("ticks")
    scheduler.after(0.25, counter.inc, label="tick")
    scheduler.after(0.75, counter.inc, label="tick")
    registry.sample_every(scheduler, period=0.5, max_samples=3)
    scheduler.run(until=10.0)
    times = [t for t, _snap in registry.samples]
    assert times == [0.5, 1.0, 1.5]
    first = {e["name"]: e for e in registry.samples[0][1]}
    last = {e["name"]: e for e in registry.samples[-1][1]}
    assert first["ticks"]["value"] == 1
    assert last["ticks"]["value"] == 2


def test_quantile_empty_histogram_returns_zero():
    hist = Histogram("h", ())
    for q in (0.0, 0.5, 1.0):
        assert hist.quantile(q) == 0.0


def test_quantile_extremes_return_observed_min_and_max():
    hist = Histogram("h", ())
    for value in (0.5, 1.0, 2.0, 8.0):
        hist.observe(value)
    assert hist.quantile(0.0) == 0.5
    assert hist.quantile(1.0) == 8.0
    # Out-of-range q clamps rather than raising.
    assert hist.quantile(-0.3) == 0.5
    assert hist.quantile(1.7) == 8.0


def test_quantile_single_bucket_clamps_to_extremes():
    hist = Histogram("h", ())
    # Identical observations occupy one log bucket: every interior
    # quantile must come back clamped inside [min, max].
    for _ in range(5):
        hist.observe(3.0)
    for q in (0.1, 0.5, 0.9):
        assert hist.quantile(q) == 3.0


def test_quantile_single_observation():
    hist = Histogram("h", ())
    hist.observe(0.25)
    assert hist.quantile(0.0) == 0.25
    assert hist.quantile(0.5) == 0.25
    assert hist.quantile(1.0) == 0.25


def test_bucket_counts_sorted_with_zero_bucket_first():
    hist = Histogram("h", ())
    hist.observe(0.0)     # zero bucket (index None)
    hist.observe(1.5)
    hist.observe(100.0)
    buckets = hist.bucket_counts()
    assert buckets[0][0] is None and buckets[0][1] == 1
    indexes = [index for index, _count in buckets[1:]]
    assert indexes == sorted(indexes)
    assert sum(count for _index, count in buckets) == 3


def test_label_cardinality_guard_warns_once_and_funnels():
    registry = MetricsRegistry(max_label_sets=3)
    for n in range(3):
        registry.counter("per_op", op=n).inc()
    with pytest.warns(RuntimeWarning, match="exceeded 3 label sets"):
        registry.counter("per_op", op=3).inc()
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a second warning would raise
        registry.counter("per_op", op=4).inc()
        registry.counter("per_op", op=5).inc(2)
    # Distinct refused label-sets share one overflow instance.
    assert registry.value("per_op", overflow=True) == 4
    assert registry.capped_label_sets == {"per_op": 3}
    # The family stayed bounded: 3 real instances + 1 overflow.
    assert len(registry.family("per_op")) == 4
    # Totals still include the funnelled increments.
    assert registry.total("per_op") == 7


def test_label_cardinality_guard_keeps_existing_instances_writable():
    registry = MetricsRegistry(max_label_sets=2)
    first = registry.counter("ops", kind="a")
    registry.counter("ops", kind="b")
    with pytest.warns(RuntimeWarning):
        registry.counter("ops", kind="c")
    # Pre-existing label sets are unaffected by the cap.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = registry.counter("ops", kind="a")
    assert again is first


def test_overflow_instance_kind_conflict_is_an_error():
    registry = MetricsRegistry(max_label_sets=1)
    registry.counter("mixed", op=0)
    with pytest.warns(RuntimeWarning):
        registry.counter("mixed", op=1)
    with pytest.raises(ValueError):
        registry.gauge("mixed", op=2)
