"""Unit tests for RSA signatures and key generation."""

import random

import pytest

from repro.crypto.md4 import md4_digest
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import CryptoError, generate_keypair


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(random.Random(1234), modulus_bits=300)


def test_modulus_has_requested_size(keypair):
    assert keypair.public.modulus_bits == 300


def test_sign_verify_roundtrip(keypair):
    digest = md4_digest(b"token contents")
    signature = keypair.sign(digest)
    assert keypair.public.verify(digest, signature)


def test_signature_fails_on_different_digest(keypair):
    signature = keypair.sign(md4_digest(b"token contents"))
    assert not keypair.public.verify(md4_digest(b"mutant token"), signature)


def test_tampered_signature_fails(keypair):
    digest = md4_digest(b"token contents")
    signature = keypair.sign(digest)
    assert not keypair.public.verify(digest, signature ^ 1)


def test_out_of_range_signature_fails(keypair):
    digest = md4_digest(b"token contents")
    assert not keypair.public.verify(digest, keypair.public.n + 5)
    assert not keypair.public.verify(digest, -1)


def test_signature_requires_int(keypair):
    with pytest.raises(CryptoError):
        keypair.public.verify(md4_digest(b"x"), b"raw bytes")


def test_other_key_cannot_verify(keypair):
    other = generate_keypair(random.Random(99), modulus_bits=300)
    digest = md4_digest(b"token contents")
    assert not other.public.verify(digest, keypair.sign(digest))


def test_signing_is_deterministic(keypair):
    digest = md4_digest(b"abc")
    assert keypair.sign(digest) == keypair.sign(digest)


def test_keypair_generation_is_seed_deterministic():
    a = generate_keypair(random.Random(7), modulus_bits=256)
    b = generate_keypair(random.Random(7), modulus_bits=256)
    assert a.public == b.public


@pytest.mark.parametrize("bits", [256, 300, 512])
def test_various_modulus_sizes(bits):
    pair = generate_keypair(random.Random(5), modulus_bits=bits)
    digest = md4_digest(b"hello")
    assert pair.public.modulus_bits == bits
    assert pair.public.verify(digest, pair.sign(digest))


def test_too_small_modulus_rejected():
    with pytest.raises(CryptoError):
        generate_keypair(random.Random(5), modulus_bits=128)


def test_generate_prime_is_prime_and_right_size():
    rng = random.Random(11)
    p = generate_prime(64, rng)
    assert p.bit_length() == 64
    assert is_probable_prime(p, rng)


def test_is_probable_prime_on_known_values():
    rng = random.Random(3)
    assert is_probable_prime(2, rng)
    assert is_probable_prime(97, rng)
    assert is_probable_prime(2**61 - 1, rng)  # Mersenne prime
    assert not is_probable_prime(1, rng)
    assert not is_probable_prime(0, rng)
    assert not is_probable_prime(561, rng)  # Carmichael number
    assert not is_probable_prime(2**61 + 1, rng)


def test_crt_signature_equals_plain_exponentiation(keypair):
    """CRT signing (optimized mode) produces the exact same signature as
    the plain ``pow(m, d, n)`` path (baseline mode)."""
    from repro import perf

    digest = md4_digest(b"crt equivalence check")
    with perf.mode(True):
        fast = keypair.sign(digest)
    with perf.mode(False):
        plain = keypair.sign(digest)
    assert fast == plain
    assert keypair.public.verify(digest, fast)


def test_crt_signatures_verify_across_many_digests(keypair):
    from repro import perf

    with perf.mode(True):
        for i in range(10):
            digest = md4_digest(b"msg %d" % i)
            assert keypair.public.verify(digest, keypair.sign(digest))
