"""Unit tests for the declarative SLO engine and burn-rate alerting."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import BurnRule, SLOEngine, SLOSpec, join_scorecard, render_slo
from repro.sim.scheduler import Scheduler


def driven_sampler(schedule, until, period=0.5):
    """Run ``schedule(scheduler, registry)`` and return the sampler."""
    scheduler = Scheduler()
    registry = MetricsRegistry()
    sampler = registry.sample_series(scheduler, period=period)
    schedule(scheduler, registry)
    scheduler.run(until=until)
    return sampler


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------

def test_spec_validation():
    with pytest.raises(ValueError):
        SLOSpec("x", "temperature", target=0.9)
    with pytest.raises(ValueError):
        SLOSpec("x", "availability", target=0.0)
    with pytest.raises(ValueError):
        SLOSpec("x", "availability", target=1.5)
    with pytest.raises(ValueError):
        SLOSpec("x", "latency", target=0.9)  # no threshold
    with pytest.raises(ValueError):
        SLOSpec("x", "availability", target=0.9, grace=-0.1)
    spec = SLOSpec("x", "latency", target=0.9, threshold=0.25)
    assert spec.budget == pytest.approx(0.1)


# ----------------------------------------------------------------------
# burn-rate evaluation
# ----------------------------------------------------------------------

def latency_spec(**kwargs):
    defaults = dict(
        rules=(BurnRule("page", long_window=1.0, short_window=0.5,
                        max_burn=2.0, min_events=1),),
    )
    defaults.update(kwargs)
    return SLOSpec("lat", "latency", target=0.9, threshold=0.25, **defaults)


def test_latency_alert_fires_and_resolves():
    def schedule(scheduler, registry):
        hist = registry.histogram("span.end_to_end_seconds")
        for k in range(20):  # healthy traffic
            scheduler.at(0.1 + k * 0.1, hist.observe, 0.01, label="w")
        for k in range(10):  # a burst of slow invocations
            scheduler.at(2.15 + k * 0.05, hist.observe, 0.9, label="w")
        for k in range(20):  # recovery
            scheduler.at(3.1 + k * 0.1, hist.observe, 0.01, label="w")

    sampler = driven_sampler(schedule, until=5.5)
    result = SLOEngine([latency_spec()]).evaluate(sampler)
    assert len(result["alerts"]) == 1
    alert = result["alerts"][0]
    assert alert["record"] == "alert"
    assert alert["slo"] == "lat"
    assert alert["severity"] == "page"
    assert alert["fired_at"] == pytest.approx(2.5)
    assert alert["resolved_at"] is not None
    assert alert["fired_burn_long"] >= 2.0
    assert alert["fired_burn_short"] >= 2.0
    assert alert["peak_burn_long"] >= alert["fired_burn_long"]
    status = result["slos"][0]["status"]
    assert status["total"] == 50
    assert status["bad"] == 10
    assert not status["met"]  # 20% bad against a 10% budget
    assert result["slos"][0]["alerts"] == 1


def test_quiet_run_fires_nothing():
    def schedule(scheduler, registry):
        hist = registry.histogram("span.end_to_end_seconds")
        for k in range(20):
            scheduler.at(0.1 + k * 0.1, hist.observe, 0.01, label="w")

    sampler = driven_sampler(schedule, until=3.0)
    result = SLOEngine([latency_spec()]).evaluate(sampler)
    assert result["alerts"] == []
    assert result["slos"][0]["status"]["met"]


def test_min_events_suppresses_single_sample_noise():
    def schedule(scheduler, registry):
        hist = registry.histogram("span.end_to_end_seconds")
        scheduler.at(0.1, hist.observe, 0.9, label="w")  # one slow call

    sampler = driven_sampler(schedule, until=2.0)
    noisy = latency_spec()
    assert SLOEngine([noisy]).evaluate(sampler)["alerts"]  # min_events=1 pages
    guarded = latency_spec(rules=(
        BurnRule("page", long_window=1.0, short_window=0.5,
                 max_burn=2.0, min_events=4),
    ))
    assert SLOEngine([guarded]).evaluate(sampler)["alerts"] == []


def test_unresolved_alert_at_end_of_run():
    def schedule(scheduler, registry):
        hist = registry.histogram("span.end_to_end_seconds")
        for k in range(10):
            scheduler.at(0.1 + k * 0.1, hist.observe, 0.9, label="w")

    # The run ends while the slow burst is still inside both windows.
    sampler = driven_sampler(schedule, until=1.0)
    result = SLOEngine([latency_spec()]).evaluate(sampler)
    assert len(result["alerts"]) == 1
    assert result["alerts"][0]["resolved_at"] is None


def availability_spec(grace=0.0, min_events=1):
    return SLOSpec(
        "avail", "availability", target=0.9, grace=grace,
        rules=(BurnRule("page", long_window=1.0, short_window=0.5,
                        max_burn=2.0, min_events=min_events),),
    )


def test_availability_grace_forgives_in_flight_invocations():
    def schedule(scheduler, registry):
        opened = registry.counter("span.opened")
        closed = registry.counter("span.closed")
        for k in range(1, 9):
            # Every invocation opens, then closes a full second later —
            # slower than the short alert window, so without grace the
            # in-flight tail reads as failures while the run spins up.
            scheduler.at(0.25 * k, opened.inc, label="w")
            scheduler.at(0.25 * k + 1.0, closed.inc, label="w")

    sampler = driven_sampler(schedule, until=4.5)
    assert SLOEngine(
        [availability_spec(grace=0.0, min_events=4)]
    ).evaluate(sampler)["alerts"]
    # A grace of one closure latency forgives them.
    result = SLOEngine(
        [availability_spec(grace=1.0, min_events=4)]
    ).evaluate(sampler)
    assert result["alerts"] == []


def test_availability_stall_burns_through_grace():
    def schedule(scheduler, registry):
        opened = registry.counter("span.opened")
        closed = registry.counter("span.closed")
        for k in range(30):
            scheduler.at(0.1 + k * 0.1, opened.inc, label="w")
            if k < 10:  # closures stop dead at t=1.1 (a stall)
                scheduler.at(0.15 + k * 0.1, closed.inc, label="w")

    sampler = driven_sampler(schedule, until=4.0)
    result = SLOEngine([availability_spec(grace=0.3, min_events=4)]).evaluate(
        sampler
    )
    assert len(result["alerts"]) == 1
    assert result["alerts"][0]["fired_at"] < 2.5  # pages during the stall


# ----------------------------------------------------------------------
# detection-latency judgment and the scorecard join
# ----------------------------------------------------------------------

def detection_spec():
    return SLOSpec("det", "detection_latency", target=1.0, threshold=2.0)


def empty_sampler():
    return driven_sampler(lambda scheduler, registry: None, until=1.0)


def test_detection_latency_judged_against_scorecard():
    engine = SLOEngine([detection_spec()])
    good = {"recall": 1.0, "detection_latency": {"max": 0.9}, "per_fault": []}
    bad = {"recall": 0.5, "detection_latency": {"max": 0.9}, "per_fault": []}
    slow = {"recall": 1.0, "detection_latency": {"max": 3.0}, "per_fault": []}
    sampler = empty_sampler()
    assert engine.evaluate(sampler, good)["slos"][0]["status"]["met"]
    assert not engine.evaluate(sampler, bad)["slos"][0]["status"]["met"]
    assert not engine.evaluate(sampler, slow)["slos"][0]["status"]["met"]
    assert engine.evaluate(sampler, None)["slos"][0]["status"]["met"] is None


def fault(fault_id, time, detection_time, detectable=True):
    return {
        "fault_id": fault_id,
        "time": time,
        "detection_time": detection_time,
        "detectable": detectable,
    }


def alert(fired_at, slo="avail", severity="page"):
    return {
        "record": "alert", "slo": slo, "sli": "availability",
        "severity": severity, "long_window": 1.0, "short_window": 0.5,
        "max_burn": 2.0, "fired_at": fired_at, "resolved_at": None,
        "fired_burn_long": 4.0, "fired_burn_short": 4.0,
    }


def test_join_scorecard_verdicts():
    scorecard = {"per_fault": [
        fault("crash:A", 2.0, 3.0),
        fault("crash:B", 5.0, 5.5),
        fault("crash:C", 8.0, None),
        fault("crash:D", 9.5, None),
        fault("noise", 0.0, None, detectable=False),
    ]}
    rows = join_scorecard(
        [alert(2.5), alert(6.0), alert(8.2)], scorecard
    )
    by_id = {row["fault_id"]: row for row in rows}
    assert "noise" not in by_id  # undetectable faults are skipped
    assert by_id["crash:A"]["verdict"] == "led"
    assert by_id["crash:A"]["lead_seconds"] == pytest.approx(0.5)
    assert by_id["crash:B"]["verdict"] == "lagged"
    assert by_id["crash:B"]["lead_seconds"] == pytest.approx(-0.5)
    assert by_id["crash:C"]["verdict"] == "alert_only"
    assert by_id["crash:D"]["verdict"] == "blind"
    assert join_scorecard([alert(2.5)], None) == []


def test_join_scorecard_no_alert_but_detected():
    scorecard = {"per_fault": [fault("crash:A", 2.0, 3.0)]}
    rows = join_scorecard([], scorecard)
    assert rows[0]["verdict"] == "no_alert"


# ----------------------------------------------------------------------
# determinism and rendering
# ----------------------------------------------------------------------

def test_evaluation_is_deterministic():
    def schedule(scheduler, registry):
        hist = registry.histogram("span.end_to_end_seconds")
        for k in range(10):
            scheduler.at(0.1 + k * 0.1, hist.observe, 0.9, label="w")

    first = SLOEngine([latency_spec()]).evaluate(
        driven_sampler(schedule, until=2.0)
    )
    second = SLOEngine([latency_spec()]).evaluate(
        driven_sampler(schedule, until=2.0)
    )
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_render_slo_mentions_alerts_and_verdicts():
    def schedule(scheduler, registry):
        hist = registry.histogram("span.end_to_end_seconds")
        for k in range(10):
            scheduler.at(0.1 + k * 0.1, hist.observe, 0.9, label="w")

    sampler = driven_sampler(schedule, until=2.0)
    scorecard = {
        "recall": 1.0, "detection_latency": {"max": 0.5},
        "per_fault": [fault("crash:A", 0.2, 1.0)],
    }
    result = SLOEngine(
        [latency_spec(), detection_spec()]
    ).evaluate(sampler, scorecard)
    text = render_slo(result)
    assert "VIOLATED" in text
    assert "[page  ] lat" in text
    assert "crash:A" in text
    assert "alert led detector" in text
