"""Unit tests for cluster layout and deterministic group placement."""

import pytest

from repro.cluster.config import ClusterConfig, ClusterConfigError
from repro.cluster.placement import (
    PlacementEngine,
    rendezvous_ranking,
    rendezvous_score,
)
from repro.core.config import SurvivabilityCase


# ----------------------------------------------------------------------
# cluster layout
# ----------------------------------------------------------------------


def test_ring_pids_are_disjoint_and_contiguous():
    config = ClusterConfig(num_rings=3, procs_per_ring=5)
    assert config.ring_pids(0) == (0, 1, 2, 3, 4)
    assert config.ring_pids(1) == (5, 6, 7, 8, 9)
    assert config.ring_pids(2) == (10, 11, 12, 13, 14)
    for pid in range(15):
        assert pid in config.ring_pids(config.ring_of_pid(pid))


def test_gateway_pids_are_the_ring_tail_and_workers_the_rest():
    config = ClusterConfig(num_rings=2, procs_per_ring=6, gateway_degree=3)
    assert config.gateway_pids(0) == (3, 4, 5)
    assert config.worker_pids(0) == (0, 1, 2)
    assert config.gateway_pids(1) == (9, 10, 11)
    assert config.worker_pids(1) == (6, 7, 8)


def test_single_ring_cluster_has_no_gateways():
    config = ClusterConfig(num_rings=1, procs_per_ring=6)
    assert config.gateway_degree == 0
    assert config.gateway_pids(0) == ()
    assert config.worker_pids(0) == config.ring_pids(0)


def test_voting_cluster_rejects_undersized_gateway_quorum():
    # Two gateway copies cannot outvote one Byzantine gateway.
    with pytest.raises(ClusterConfigError):
        ClusterConfig(num_rings=2, gateway_degree=2)
    # A non-voting replicated case may run thinner gateways.
    ClusterConfig(
        num_rings=2,
        gateway_degree=2,
        case=SurvivabilityCase.ACTIVE_REPLICATION,
    )


def test_multi_ring_cluster_requires_replication():
    with pytest.raises(ClusterConfigError):
        ClusterConfig(num_rings=2, case=SurvivabilityCase.UNREPLICATED)


def test_ring_config_is_fresh_per_ring():
    # resolve_timeouts mutates the MulticastConfig in place; rings must
    # not share one instance or the first ring's sizes leak into others.
    config = ClusterConfig(num_rings=2)
    assert config.ring_config(0).multicast is not config.ring_config(1).multicast


# ----------------------------------------------------------------------
# rendezvous hashing
# ----------------------------------------------------------------------


def test_rendezvous_score_is_stable_across_processes():
    # SHA-256 based: a fixed literal value pins cross-platform and
    # cross-run stability (hash() randomisation must not leak in).
    assert rendezvous_score("ledger", "ring:0", 0) == rendezvous_score(
        "ledger", "ring:0", 0
    )
    assert rendezvous_score("ledger", "ring:0", 0) != rendezvous_score(
        "ledger", "ring:1", 0
    )
    assert rendezvous_score("ledger", "ring:0", 0) != rendezvous_score(
        "ledger", "ring:0", 1
    )


def test_rendezvous_ranking_orders_by_descending_score():
    buckets = list(range(8))
    ranking = rendezvous_ranking("svc", buckets, salt=3)
    assert sorted(ranking) == buckets
    scores = [rendezvous_score("svc", b, 3) for b in ranking]
    assert scores == sorted(scores, reverse=True)


def test_rendezvous_minimal_disruption_when_a_ring_is_removed():
    # Removing one bucket only moves the groups that lived on it.
    groups = ["g%d" % k for k in range(40)]
    before = {g: rendezvous_ranking(g, range(4))[0] for g in groups}
    after = {g: rendezvous_ranking(g, range(3))[0] for g in groups}
    for g in groups:
        if before[g] != 3:
            assert after[g] == before[g]


# ----------------------------------------------------------------------
# the placement engine
# ----------------------------------------------------------------------


def make_engine(mode="rendezvous", num_rings=2, **kwargs):
    config = ClusterConfig(num_rings=num_rings, placement_mode=mode, **kwargs)
    return PlacementEngine(config)


def test_placement_is_deterministic():
    a = make_engine()
    b = make_engine()
    for name in ("alpha", "beta", "gamma"):
        pa, pb = a.place(name), b.place(name)
        assert (pa.ring, pa.procs) == (pb.ring, pb.procs)


def test_placement_keeps_group_on_one_ring_one_replica_per_proc():
    engine = make_engine(num_rings=3)
    for k in range(12):
        placement = engine.place("group%d" % k)
        rings = {engine.config.ring_of_pid(pid) for pid in placement.procs}
        assert rings == {placement.ring}
        assert len(set(placement.procs)) == len(placement.procs)


def test_placement_prefers_worker_pids():
    engine = make_engine()
    placement = engine.place("svc", degree=3)
    workers = set(engine.config.worker_pids(placement.ring))
    assert set(placement.procs) <= workers


def test_placement_spills_to_gateways_only_when_workers_exhausted():
    engine = make_engine()  # 6 procs: 3 workers + 3 gateways per ring
    placement = engine.place("wide", degree=5)
    workers = set(engine.config.worker_pids(placement.ring))
    assert workers <= set(placement.procs)
    assert len(placement.procs) == 5


def test_placement_rejects_oversized_groups_and_duplicates():
    engine = make_engine()
    with pytest.raises(ClusterConfigError):
        engine.place("huge", degree=7)  # > procs_per_ring
    engine.place("once")
    with pytest.raises(ClusterConfigError):
        engine.place("once")


def test_voting_case_rejects_unvotable_degree():
    engine = make_engine()
    with pytest.raises(ClusterConfigError):
        engine.place("solo", degree=1)


def test_balanced_mode_splits_evenly():
    engine = make_engine(mode="balanced", num_rings=2)
    for k in range(8):
        engine.place("pair%d" % k)
    distribution = engine.distribution()
    assert len(distribution[0]) == 4
    assert len(distribution[1]) == 4


def test_explicit_ring_pin_overrides_the_hash():
    engine = make_engine(num_rings=2)
    placement = engine.place("pinned", ring=1)
    assert placement.ring == 1
    with pytest.raises(ClusterConfigError):
        engine.place("nowhere", ring=5)


def test_to_dict_is_json_shaped():
    engine = make_engine()
    engine.place("svc")
    data = engine.to_dict()
    assert data["mode"] == "rendezvous"
    assert data["placements"][0]["group"] == "svc"
    assert isinstance(data["placements"][0]["procs"], list)


# ----------------------------------------------------------------------
# elasticity: rebalance deltas, moves, layout proposals
# ----------------------------------------------------------------------


def test_rebalance_delta_lists_only_changed_groups_sorted():
    old = {"a": 0, "b": 1, "c": 0, "gone": 1}
    new = {"a": 1, "b": 1, "c": 2, "fresh": 0}
    delta = PlacementEngine.rebalance_delta(old, new)
    # changed groups only, sorted; deploys/retirements are not moves
    assert delta == [("a", 0, 1), ("c", 0, 2)]
    assert PlacementEngine.rebalance_delta(new, new) == []


def test_move_rerecords_placement_and_load():
    engine = make_engine(num_rings=2)
    placement = engine.place("svc")
    src = placement.ring
    dst = 1 - src
    procs = engine.replica_procs("svc", dst, len(placement.procs))
    moved = engine.move("svc", dst, procs)
    assert moved.ring == dst and moved.procs == tuple(procs)
    assert engine.layout() == {"svc": dst}
    assert engine.load[src] == 0
    assert engine.load[dst] == len(procs)
    with pytest.raises(ClusterConfigError):
        engine.move("never-placed", dst, procs)


def test_add_ring_opens_a_load_bucket_without_clobbering():
    engine = make_engine(num_rings=2)
    engine.place("svc", ring=1)
    engine.add_ring(2)
    assert engine.load[2] == 0
    engine.add_ring(1)  # re-adding an accounted ring is a no-op
    assert engine.load[1] > 0


def test_propose_layout_is_pure_rendezvous_and_stable():
    # The proposal must depend only on (group, rings, salt): engines
    # with different modes and load histories agree, and repeating the
    # call cannot oscillate.
    a = make_engine(mode="balanced", num_rings=2)
    b = make_engine(mode="rendezvous", num_rings=2)
    for k in range(4):
        a.place("g%d" % k)
    groups = ["g0", "g1", "g2", "g3"]
    proposal = a.propose_layout([0, 1], groups)
    assert proposal == b.propose_layout([0, 1], groups)
    assert proposal == a.propose_layout([1, 0], groups)
    assert set(proposal) == set(groups)
    assert set(proposal.values()) <= {0, 1}
