"""Unit tests for GIOP framing."""

import pytest

from repro.orb.giop import (
    GiopError,
    ReplyMessage,
    RequestMessage,
    REPLY_NO_EXCEPTION,
    REPLY_SYSTEM_EXCEPTION,
    decode_message,
)
from repro.orb.transport import split_frames


def test_request_roundtrip():
    request = RequestMessage(17, b"server/key", "get_quote", b"\x01\x02\x03")
    decoded = decode_message(request.encode())
    assert isinstance(decoded, RequestMessage)
    assert decoded.request_id == 17
    assert decoded.object_key == b"server/key"
    assert decoded.operation == "get_quote"
    assert decoded.body == b"\x01\x02\x03"
    assert decoded.response_expected


def test_oneway_request_roundtrip():
    request = RequestMessage(3, b"k", "ping", b"", response_expected=False)
    decoded = decode_message(request.encode())
    assert not decoded.response_expected
    assert decoded.body == b""


def test_reply_roundtrip():
    reply = ReplyMessage(17, REPLY_NO_EXCEPTION, b"result")
    decoded = decode_message(reply.encode())
    assert isinstance(decoded, ReplyMessage)
    assert decoded.request_id == 17
    assert decoded.reply_status == REPLY_NO_EXCEPTION
    assert decoded.body == b"result"


def test_exception_reply_roundtrip():
    decoded = decode_message(ReplyMessage(5, REPLY_SYSTEM_EXCEPTION, b"").encode())
    assert decoded.reply_status == REPLY_SYSTEM_EXCEPTION


def test_frame_starts_with_magic():
    frame = RequestMessage(1, b"k", "op", b"").encode()
    assert frame[:4] == b"GIOP"


def test_bad_magic_rejected():
    frame = bytearray(RequestMessage(1, b"k", "op", b"").encode())
    frame[0] = ord("X")
    with pytest.raises(GiopError):
        decode_message(bytes(frame))


def test_bad_version_rejected():
    frame = bytearray(RequestMessage(1, b"k", "op", b"").encode())
    frame[4] = 9
    with pytest.raises(GiopError):
        decode_message(bytes(frame))


def test_size_mismatch_rejected():
    frame = RequestMessage(1, b"k", "op", b"").encode()
    with pytest.raises(GiopError):
        decode_message(frame + b"extra")
    with pytest.raises(GiopError):
        decode_message(frame[:-1])


def test_short_frame_rejected():
    with pytest.raises(GiopError):
        decode_message(b"GIOP")


def test_unknown_message_type_rejected():
    frame = bytearray(RequestMessage(1, b"k", "op", b"").encode())
    frame[7] = 99
    with pytest.raises(GiopError):
        decode_message(bytes(frame))


def test_split_frames_recovers_batches():
    frames = [
        RequestMessage(i, b"k", "op%d" % i, b"x" * i, response_expected=False).encode()
        for i in range(4)
    ]
    assert split_frames(b"".join(frames)) == frames


def test_split_frames_rejects_truncated_tail():
    frame = RequestMessage(1, b"k", "op", b"body").encode()
    with pytest.raises(GiopError):
        split_frames(frame + frame[:6])
    with pytest.raises(GiopError):
        split_frames(frame[: len(frame) - 2])


def test_split_frames_empty_input():
    assert split_frames(b"") == []
