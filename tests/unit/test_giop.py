"""Unit tests for GIOP framing."""

import pytest

from repro.orb.giop import (
    GiopError,
    ReplyMessage,
    RequestMessage,
    REPLY_NO_EXCEPTION,
    REPLY_SYSTEM_EXCEPTION,
    decode_message,
)
from repro.orb.transport import split_frames


def test_request_roundtrip():
    request = RequestMessage(17, b"server/key", "get_quote", b"\x01\x02\x03")
    decoded = decode_message(request.encode())
    assert isinstance(decoded, RequestMessage)
    assert decoded.request_id == 17
    assert decoded.object_key == b"server/key"
    assert decoded.operation == "get_quote"
    assert decoded.body == b"\x01\x02\x03"
    assert decoded.response_expected


def test_oneway_request_roundtrip():
    request = RequestMessage(3, b"k", "ping", b"", response_expected=False)
    decoded = decode_message(request.encode())
    assert not decoded.response_expected
    assert decoded.body == b""


def test_reply_roundtrip():
    reply = ReplyMessage(17, REPLY_NO_EXCEPTION, b"result")
    decoded = decode_message(reply.encode())
    assert isinstance(decoded, ReplyMessage)
    assert decoded.request_id == 17
    assert decoded.reply_status == REPLY_NO_EXCEPTION
    assert decoded.body == b"result"


def test_exception_reply_roundtrip():
    decoded = decode_message(ReplyMessage(5, REPLY_SYSTEM_EXCEPTION, b"").encode())
    assert decoded.reply_status == REPLY_SYSTEM_EXCEPTION


def test_frame_starts_with_magic():
    frame = RequestMessage(1, b"k", "op", b"").encode()
    assert frame[:4] == b"GIOP"


def test_bad_magic_rejected():
    frame = bytearray(RequestMessage(1, b"k", "op", b"").encode())
    frame[0] = ord("X")
    with pytest.raises(GiopError):
        decode_message(bytes(frame))


def test_bad_version_rejected():
    frame = bytearray(RequestMessage(1, b"k", "op", b"").encode())
    frame[4] = 9
    with pytest.raises(GiopError):
        decode_message(bytes(frame))


def test_size_mismatch_rejected():
    frame = RequestMessage(1, b"k", "op", b"").encode()
    with pytest.raises(GiopError):
        decode_message(frame + b"extra")
    with pytest.raises(GiopError):
        decode_message(frame[:-1])


def test_short_frame_rejected():
    with pytest.raises(GiopError):
        decode_message(b"GIOP")


def test_unknown_message_type_rejected():
    frame = bytearray(RequestMessage(1, b"k", "op", b"").encode())
    frame[7] = 99
    with pytest.raises(GiopError):
        decode_message(bytes(frame))


def test_split_frames_recovers_batches():
    frames = [
        RequestMessage(i, b"k", "op%d" % i, b"x" * i, response_expected=False).encode()
        for i in range(4)
    ]
    assert split_frames(b"".join(frames)) == frames


def test_split_frames_rejects_truncated_tail():
    frame = RequestMessage(1, b"k", "op", b"body").encode()
    with pytest.raises(GiopError):
        split_frames(frame + frame[:6])
    with pytest.raises(GiopError):
        split_frames(frame[: len(frame) - 2])


def test_split_frames_empty_input():
    assert split_frames(b"") == []


# ----------------------------------------------------------------------
# encode fast paths (optimized mode) vs the generic encoder
# ----------------------------------------------------------------------

from repro import perf  # noqa: E402


def test_request_template_encode_matches_generic():
    with perf.mode(True):
        for request_id in (0, 1, 17, 2**32 - 1):
            for body in (b"", b"x", b"\x01\x02\x03\x04\x05"):
                for oneway in (False, True):
                    msg = RequestMessage(
                        request_id, b"server/key", "get_quote", body,
                        response_expected=not oneway,
                    )
                    assert msg.encode() == msg._encode()


def test_reply_fast_encode_matches_generic():
    with perf.mode(True):
        for request_id in (0, 5, 2**32 - 1):
            for status in (REPLY_NO_EXCEPTION, REPLY_SYSTEM_EXCEPTION):
                for body in (b"", b"result-bytes"):
                    msg = ReplyMessage(request_id, status, body)
                    assert msg.encode() == msg._encode()


def test_encode_identical_across_modes():
    request = RequestMessage(99, b"k", "op", b"body")
    reply = ReplyMessage(99, REPLY_NO_EXCEPTION, b"r")
    with perf.mode(True):
        fast = (request.encode(), reply.encode())
    with perf.mode(False):
        baseline = (request.encode(), reply.encode())
    assert fast == baseline


def test_decode_shared_returns_equal_message():
    from repro.orb.giop import decode_message_shared

    frame = RequestMessage(4, b"key", "op", b"pl").encode()
    with perf.mode(True):
        first = decode_message_shared(frame)
        second = decode_message_shared(frame)
        assert first is second  # memoised fan-out share
    plain = decode_message(frame)
    assert (first.request_id, first.object_key, first.operation, first.body) == (
        plain.request_id, plain.object_key, plain.operation, plain.body
    )
