"""Unit tests for the ring-buffered time-series sampler."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.series import Series, SeriesSampler, sparkline
from repro.sim.scheduler import Scheduler


def sampled_registry(period=0.5, max_points=4096, families=None):
    scheduler = Scheduler()
    registry = MetricsRegistry()
    sampler = registry.sample_series(
        scheduler, period=period, max_points=max_points, families=families
    )
    return scheduler, registry, sampler


# ----------------------------------------------------------------------
# sparkline
# ----------------------------------------------------------------------

def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"
    line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert line == "▁▂▃▄▅▆▇█"


def test_sparkline_width_resampling_keeps_spikes():
    values = [0.0] * 20
    values[13] = 9.0  # one short spike
    line = sparkline(values, width=5)
    assert len(line) == 5
    assert "█" in line  # chunk-max keeps the spike visible


def test_sparkline_none_values_read_as_zero():
    assert sparkline([None, 1.0]) == "▁█"


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------

def test_counter_series_records_cumulative_points():
    scheduler, registry, sampler = sampled_registry(period=0.5)
    counter = registry.counter("ticks")
    scheduler.at(0.2, counter.inc, label="w")
    scheduler.at(0.7, counter.inc, label="w")
    scheduler.run(until=1.0)
    series = sampler.get("ticks")
    assert series.kind == "counter"
    assert list(series.points) == [(0.5, 1), (1.0, 2)]
    assert list(sampler.times) == [0.5, 1.0]


def test_series_delta_and_rate():
    scheduler, registry, sampler = sampled_registry(period=0.5)
    counter = registry.counter("ticks")
    scheduler.at(0.2, counter.inc, label="w")
    scheduler.at(0.7, lambda: counter.inc(3), label="w")
    scheduler.run(until=1.5)
    series = sampler.get("ticks")
    assert series.delta(0.5, 1.0) == 3
    assert series.delta(0.0, 1.5) == 4
    assert series.value_at(0.6) == 1  # last point at or before t
    assert series.value_at(0.1) == 0  # before the first sample


def test_histogram_series_supports_windowed_bad_fractions():
    scheduler, registry, sampler = sampled_registry(period=1.0)
    hist = registry.histogram("lat")
    scheduler.at(0.5, hist.observe, 0.01, label="w")
    scheduler.at(1.5, hist.observe, 0.9, label="w")
    scheduler.at(1.6, hist.observe, 0.8, label="w")
    scheduler.run(until=2.0)
    assert sampler.family_delta("lat", 0.0, 2.0) == 3
    # Only the second window's observations exceed 0.25.
    assert sampler.family_delta_above("lat", 0.25, 0.0, 1.0) == 0
    assert sampler.family_delta_above("lat", 0.25, 1.0, 2.0) == 2


def test_ring_buffer_drops_oldest_with_explicit_counter():
    scheduler, registry, sampler = sampled_registry(period=0.5, max_points=3)
    counter = registry.counter("ticks")
    counter.inc()
    scheduler.run(until=3.0)  # 6 ticks into a 3-point ring
    series = sampler.get("ticks")
    assert len(series.points) == 3
    assert series.dropped == 3
    assert sampler.dropped_ticks == 3
    assert [p[0] for p in series.points] == [2.0, 2.5, 3.0]


def test_families_filter_limits_what_is_sampled():
    scheduler, registry, sampler = sampled_registry(
        period=0.5, families=("keep",)
    )
    registry.counter("keep").inc()
    registry.counter("discard").inc()
    scheduler.run(until=1.0)
    names = {series.name for series in sampler.series()}
    assert names == {"keep"}


def test_labels_key_distinct_series():
    scheduler, registry, sampler = sampled_registry(period=0.5)
    registry.counter("sent", ring=0).inc()
    registry.counter("sent", ring=1).inc(2)
    scheduler.run(until=0.5)
    family = sampler.family("sent")
    assert len(family) == 2
    by_ring = {dict(series.labels)["ring"]: series for series in family}
    assert by_ring[0].value_at(0.5) == 1
    assert by_ring[1].value_at(0.5) == 2


def test_stop_halts_sampling():
    scheduler, registry, sampler = sampled_registry(period=0.5)
    registry.counter("ticks").inc()
    scheduler.at(1.1, sampler.stop, label="stop")
    scheduler.run(until=3.0)
    assert list(sampler.times) == [0.5, 1.0]


def test_sample_series_replaces_previous_sampler():
    scheduler = Scheduler()
    registry = MetricsRegistry()
    first = registry.sample_series(scheduler, period=0.5)
    second = registry.sample_series(scheduler, period=0.25)
    assert registry.series_sampler is second
    registry.counter("ticks").inc()
    scheduler.run(until=1.0)
    assert list(first.times) == []  # replaced before it ever ticked
    assert list(second.times) == [0.25, 0.5, 0.75, 1.0]


def test_series_round_trips_through_dicts():
    scheduler, registry, sampler = sampled_registry(period=0.5)
    registry.counter("ticks", ring=1).inc()
    hist = registry.histogram("lat")
    hist.observe(0.0)
    hist.observe(0.5)
    scheduler.run(until=1.0)
    for original in sampler.series():
        rebuilt = Series.from_dict(original.to_dict())
        assert rebuilt.name == original.name
        assert rebuilt.kind == original.kind
        assert rebuilt.labels == original.labels
        assert list(rebuilt.points) == list(original.points)
        assert rebuilt.to_dict() == original.to_dict()


def test_base_stays_in_sync_with_histogram():
    from repro.obs import series as series_mod

    assert series_mod._HISTOGRAM_BASE == Histogram.BASE


def test_ring_scoped_registry_passes_series_sampling_through():
    from repro.cluster.obsbridge import RingScopedRegistry

    scheduler = Scheduler()
    root = MetricsRegistry()
    view = RingScopedRegistry(root, ring_index=1)
    sampler = view.sample_series(scheduler, period=0.5)
    assert view.series_sampler is sampler is root.series_sampler
    view.counter("sent").inc(3)
    scheduler.run(until=0.5)
    series = sampler.family("sent")
    assert len(series) == 1
    # The ring label the view stamps survives into the series key.
    assert dict(series[0].labels) == {"ring": 1}
    assert series[0].value_at(0.5) == 3
