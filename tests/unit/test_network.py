"""Unit tests for the shared-medium LAN model."""

import pytest

from repro.sim.faults import FaultPlan, LinkFaults
from repro.sim.network import Network, NetworkParams
from repro.sim.process import Processor
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler, SimulationError
from repro.sim.tracing import TraceLog


def make_lan(num=3, fault_plan=None, params=None, seed=7):
    sched = Scheduler()
    rng = RngStreams(seed).stream("net")
    trace = TraceLog(sched)
    net = Network(sched, params=params, rng=rng, fault_plan=fault_plan, trace=trace)
    procs = []
    for i in range(num):
        proc = Processor(i, sched)
        net.add_processor(proc)
        procs.append(proc)
    return sched, net, procs, trace


def collect(proc, port="p"):
    inbox = []
    proc.register_handler(port, inbox.append)
    return inbox


def test_unicast_reaches_only_destination():
    sched, net, procs, _ = make_lan()
    boxes = [collect(p) for p in procs]
    net.unicast(0, 1, "p", b"hello")
    sched.run()
    assert [len(b) for b in boxes] == [0, 1, 0]
    assert boxes[1][0].payload == b"hello"


def test_broadcast_reaches_everyone_but_sender():
    sched, net, procs, _ = make_lan(4)
    boxes = [collect(p) for p in procs]
    net.broadcast(0, "p", b"x" * 10)
    sched.run()
    assert [len(b) for b in boxes] == [0, 1, 1, 1]


def test_payload_must_be_bytes():
    sched, net, procs, _ = make_lan()
    with pytest.raises(SimulationError):
        net.unicast(0, 1, "p", {"not": "bytes"})


def test_transmission_time_models_bandwidth():
    params = NetworkParams(bandwidth_bps=8_000_000, propagation_delay=0.0, jitter=0.0)
    # 1000 payload + 42 header bytes at 1 MB/s -> 1.042 ms on the wire.
    sched, net, procs, _ = make_lan(2, params=params)
    arrivals = []
    procs[1].register_handler("p", lambda d: arrivals.append(sched.now))
    net.unicast(0, 1, "p", b"z" * 1000)
    sched.run()
    assert arrivals[0] == pytest.approx(1.042e-3)


def test_medium_is_serialised():
    params = NetworkParams(bandwidth_bps=8_000_000, propagation_delay=0.0, jitter=0.0)
    sched, net, procs, _ = make_lan(2, params=params)
    arrivals = []
    procs[1].register_handler("p", lambda d: arrivals.append(sched.now))
    net.unicast(0, 1, "p", b"z" * 958)  # 1000 bytes with header -> 1 ms
    net.unicast(0, 1, "p", b"z" * 958)
    sched.run()
    assert arrivals[0] == pytest.approx(1e-3)
    assert arrivals[1] == pytest.approx(2e-3)


def test_crashed_sender_sends_nothing():
    sched, net, procs, _ = make_lan()
    box = collect(procs[1])
    procs[0].crash()
    net.unicast(0, 1, "p", b"hello")
    sched.run()
    assert box == []


def test_crashed_receiver_receives_nothing():
    sched, net, procs, _ = make_lan()
    box = collect(procs[1])
    net.unicast(0, 1, "p", b"hello")
    procs[1].crash()
    sched.run()
    assert box == []


def test_loss_injection_drops_all_with_probability_one():
    plan = FaultPlan(default=LinkFaults(loss_prob=1.0))
    sched, net, procs, _ = make_lan(fault_plan=plan)
    box = collect(procs[1])
    for _ in range(5):
        net.unicast(0, 1, "p", b"hello")
    sched.run()
    assert box == []
    assert net.stats["dropped"] == 5


def test_corruption_injection_flips_payload_bytes():
    plan = FaultPlan(default=LinkFaults(corrupt_prob=1.0))
    sched, net, procs, _ = make_lan(fault_plan=plan)
    box = collect(procs[1])
    net.unicast(0, 1, "p", b"A" * 64)
    sched.run()
    assert len(box) == 1
    assert box[0].corrupted
    assert box[0].payload != b"A" * 64
    assert len(box[0].payload) == 64


def test_per_link_faults_override_default():
    plan = FaultPlan()
    plan.set_link(0, 1, LinkFaults(loss_prob=1.0))
    sched, net, procs, _ = make_lan(fault_plan=plan)
    box1 = collect(procs[1])
    box2 = collect(procs[2])
    net.broadcast(0, "p", b"hello")
    sched.run()
    assert box1 == []
    assert len(box2) == 1


def test_fault_window_deactivates():
    plan = FaultPlan(default=LinkFaults(loss_prob=1.0), active_from=1.0, active_until=2.0)
    sched, net, procs, _ = make_lan(fault_plan=plan)
    box = collect(procs[1])
    net.unicast(0, 1, "p", b"before")
    sched.at(1.5, net.unicast, 0, 1, "p", b"during")
    sched.at(3.0, net.unicast, 0, 1, "p", b"after")
    sched.run()
    payloads = [d.payload for d in box]
    assert payloads == [b"before", b"after"]


def test_scheduled_crash_fires_via_arm_crashes():
    plan = FaultPlan().schedule_crash(2, 1.0)
    sched, net, procs, _ = make_lan(fault_plan=plan)
    plan.arm_crashes(sched, {p.proc_id: p for p in procs})
    sched.run()
    assert procs[2].crashed and procs[2].crash_time == 1.0


def test_duplicate_processor_id_rejected():
    sched, net, procs, _ = make_lan()
    with pytest.raises(SimulationError):
        net.add_processor(Processor(0, sched))


def test_trace_records_send_and_deliver():
    sched, net, procs, trace = make_lan()
    collect(procs[1])
    net.unicast(0, 1, "p", b"hello")
    sched.run()
    assert trace.count("net.send") == 1
    assert trace.count("net.deliver") == 1


# ----------------------------------------------------------------------
# corruption injection internals
# ----------------------------------------------------------------------

import random  # noqa: E402

from repro.sim.network import _flip_bytes  # noqa: E402


def test_flip_bytes_changes_one_to_four_distinct_bytes():
    """Indices are sampled without replacement: the number of bytes drawn
    is the number actually changed, and no flip can cancel another."""
    rng = random.Random(42)
    for _ in range(200):
        original = bytes(64)
        flipped = _flip_bytes(original, rng)
        assert len(flipped) == 64
        changed = sum(1 for a, b in zip(original, flipped) if a != b)
        assert 1 <= changed <= 4


def test_flip_bytes_single_byte_payload_always_changes():
    rng = random.Random(7)
    for _ in range(50):
        assert _flip_bytes(b"\x5a", rng) != b"\x5a"


def test_flip_bytes_empty_payload_is_noop():
    assert _flip_bytes(b"", random.Random(1)) == b""
