"""Unit tests for Immune message identifiers and codecs."""

import pytest

from repro.core.duplicates import DuplicateFilter
from repro.core.identifiers import (
    ImmuneCodecError,
    ImmuneMessage,
    KIND_INVOCATION,
    KIND_RESPONSE,
    OperationId,
)
from repro.core.value_fault import ValueFaultCodecError, ValueFaultVote


def test_immune_message_roundtrip():
    msg = ImmuneMessage(KIND_INVOCATION, "client", 42, 3, "server", b"\x01frame")
    decoded = ImmuneMessage.decode(msg.encode())
    assert decoded.kind == KIND_INVOCATION
    assert decoded.source_group == "client"
    assert decoded.op_num == 42
    assert decoded.replica_proc == 3
    assert decoded.target_group == "server"
    assert decoded.body == b"\x01frame"


def test_immune_message_bad_kind_rejected():
    msg = ImmuneMessage(KIND_RESPONSE, "s", 1, 0, "t", b"")
    raw = bytearray(msg.encode())
    raw[0] = 99
    with pytest.raises(ImmuneCodecError):
        ImmuneMessage.decode(bytes(raw))


def test_immune_message_truncated_rejected():
    raw = ImmuneMessage(KIND_INVOCATION, "s", 1, 0, "t", b"abc").encode()
    with pytest.raises(ImmuneCodecError):
        ImmuneMessage.decode(raw[: len(raw) - 2])


def test_operation_id_equality_and_hash():
    a = OperationId("g", 5)
    b = OperationId("g", 5)
    c = OperationId("g", 6)
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert ImmuneMessage(KIND_INVOCATION, "g", 5, 0, "t", b"").operation_id == a


def test_value_fault_vote_roundtrip():
    vote = ValueFaultVote(2, "client", 9, "server", [(0, b"d0"), (1, b"d1")])
    decoded = ValueFaultVote.decode(vote.encode())
    assert decoded.reporter == 2
    assert decoded.source_group == "client"
    assert decoded.op_num == 9
    assert decoded.target_group == "server"
    assert decoded.entries == ((0, b"d0"), (1, b"d1"))


def test_value_fault_vote_truncated_rejected():
    raw = ValueFaultVote(0, "a", 1, "b", [(0, b"x")]).encode()
    with pytest.raises(ValueFaultCodecError):
        ValueFaultVote.decode(raw[:-3])


def test_duplicate_filter_counts():
    dup = DuplicateFilter()
    assert dup.mark_delivered(("g", 0))
    assert not dup.mark_delivered(("g", 0))
    dup.suppress(("g", 0))
    assert dup.mark_delivered(("g", 1))
    assert dup.stats == {"delivered": 2, "suppressed": 2}
    assert dup.is_delivered(("g", 0))
    assert not dup.is_delivered(("g", 7))
    assert len(dup) == 2


def test_immune_message_template_encode_matches_generic():
    """The template fast path is byte-identical to the generic encoder
    for every (op_num, body) variation of a fixed routing key."""
    from repro import perf

    with perf.mode(True):
        for op_num in (0, 1, 42, 2**64 - 1):
            for body in (b"", b"\x01", b"frame-bytes" * 9):
                for kind in (KIND_INVOCATION, KIND_RESPONSE):
                    msg = ImmuneMessage(kind, "client", op_num, 3, "server", body)
                    assert msg.encode() == msg._encode()


def test_immune_message_encode_identical_across_modes():
    from repro import perf

    msg = ImmuneMessage(KIND_INVOCATION, "c", 7, 1, "s", b"payload")
    with perf.mode(True):
        fast = msg.encode()
    with perf.mode(False):
        baseline = msg.encode()
    assert fast == baseline
