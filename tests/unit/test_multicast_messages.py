"""Unit tests for multicast frame codecs."""

import pytest

from repro.multicast.messages import (
    MembershipCommit,
    MembershipProposal,
    MulticastCodecError,
    RegularMessage,
    decode_frame,
)


def test_regular_message_roundtrip():
    msg = RegularMessage(3, 7, 1234, "server-group", b"\x01\x02payload")
    decoded = decode_frame(msg.encode())
    assert isinstance(decoded, RegularMessage)
    assert decoded.sender_id == 3
    assert decoded.ring_id == 7
    assert decoded.seq == 1234
    assert decoded.dest_group == "server-group"
    assert decoded.payload == b"\x01\x02payload"


def test_regular_message_empty_payload():
    decoded = decode_frame(RegularMessage(0, 1, 1, "g", b"").encode())
    assert decoded.payload == b""


def test_proposal_roundtrip():
    proposal = MembershipProposal(
        proposer=2,
        old_ring_id=5,
        round_number=3,
        candidate_set=[0, 2, 4],
        have_contiguous=99,
        suspects=[1, 3],
        signature=123456789,
    )
    decoded = decode_frame(proposal.encode())
    assert isinstance(decoded, MembershipProposal)
    assert decoded.proposer == 2
    assert decoded.old_ring_id == 5
    assert decoded.round_number == 3
    assert decoded.candidate_set == (0, 2, 4)
    assert decoded.have_contiguous == 99
    assert decoded.suspects == (1, 3)
    assert decoded.signature == 123456789


def test_proposal_sets_are_canonicalised():
    proposal = MembershipProposal(1, 1, 1, [4, 0, 2], 0, [3, 1])
    assert proposal.candidate_set == (0, 2, 4)
    assert proposal.suspects == (1, 3)


def test_proposal_signable_excludes_signature():
    a = MembershipProposal(1, 1, 1, [0, 1], 5, [], signature=111)
    b = MembershipProposal(1, 1, 1, [0, 1], 5, [], signature=222)
    assert a.signable_bytes() == b.signable_bytes()
    assert a.encode() != b.encode()


def test_commit_roundtrip_and_unbundle():
    proposals = [
        MembershipProposal(p, 5, 2, [0, 1, 2], 10 + p, [3]).encode() for p in range(3)
    ]
    commit = MembershipCommit(0, 5, 2, proposals)
    decoded = decode_frame(commit.encode())
    assert isinstance(decoded, MembershipCommit)
    assert decoded.sender_id == 0
    assert decoded.old_ring_id == 5
    assert decoded.round_number == 2
    inner = decoded.proposals()
    assert [p.proposer for p, _ in inner] == [0, 1, 2]
    assert [raw for _, raw in inner] == proposals


def test_commit_rejects_non_proposal_content():
    bogus = MembershipCommit(0, 1, 1, [RegularMessage(0, 1, 1, "g", b"x").encode()])
    decoded = decode_frame(bogus.encode())
    with pytest.raises(MulticastCodecError):
        decoded.proposals()


def test_garbage_frame_rejected():
    with pytest.raises(MulticastCodecError):
        decode_frame(b"\xff\x00\x01")
    with pytest.raises(MulticastCodecError):
        decode_frame(b"\x01trunc")


def test_corrupted_frame_usually_fails_or_differs():
    raw = bytearray(RegularMessage(1, 1, 7, "group", b"hello").encode())
    raw[-1] ^= 0xFF  # flip a payload byte
    decoded = decode_frame(bytes(raw))
    assert decoded.payload != b"hello"


def test_regular_message_template_encode_matches_generic():
    from repro import perf

    with perf.mode(True):
        for seq in (0, 1, 1000, 2**64 - 1):
            for payload in (b"", b"\xab" * 64, b"odd\x00len\x01"):
                msg = RegularMessage(2, 4, seq, "server", payload)
                assert msg.encode() == msg._encode()


def test_regular_message_encode_identical_across_modes():
    from repro import perf

    msg = RegularMessage(1, 9, 55, "group", b"\xab" * 16)
    with perf.mode(True):
        fast = msg.encode()
    with perf.mode(False):
        baseline = msg.encode()
    assert fast == baseline
