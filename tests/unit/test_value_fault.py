"""Unit tests for the value fault detector (paper section 6.2)."""

from repro.core.groups import ObjectGroupTable
from repro.core.value_fault import ValueFaultDetector, ValueFaultVote


def make_detector(degree=3):
    table = ObjectGroupTable()
    table.create("client", list(range(degree)))
    suspected = []
    detector = ValueFaultDetector(table, suspected.append)
    return detector, suspected


def test_minority_sender_is_suspected():
    detector, suspected = make_detector(3)
    vote = ValueFaultVote(0, "client", 7, "server", [(0, b"g"), (1, b"g"), (2, b"BAD")])
    corrupt = detector.on_vote(vote)
    assert corrupt == {2}
    assert suspected == [2]


def test_duplicate_votes_processed_once():
    detector, suspected = make_detector(3)
    vote = ValueFaultVote(0, "client", 7, "server", [(0, b"g"), (1, b"g"), (2, b"BAD")])
    detector.on_vote(vote)
    detector.on_vote(ValueFaultVote(1, "client", 7, "server", vote.entries))
    assert suspected == [2]
    assert detector.stats["duplicates"] == 1


def test_no_majority_no_adjudication():
    detector, suspected = make_detector(3)
    vote = ValueFaultVote(0, "client", 7, "server", [(0, b"a"), (1, b"b")])
    assert detector.on_vote(vote) == set()
    assert suspected == []


def test_multiple_corrupt_senders():
    detector, suspected = make_detector(5)
    vote = ValueFaultVote(
        0,
        "client",
        1,
        "server",
        [(0, b"g"), (1, b"g"), (2, b"g"), (3, b"X"), (4, b"Y")],
    )
    assert detector.on_vote(vote) == {3, 4}
    assert sorted(suspected) == [3, 4]


def test_distinct_operations_adjudicated_separately():
    detector, suspected = make_detector(3)
    detector.on_vote(
        ValueFaultVote(0, "client", 1, "server", [(0, b"g"), (1, b"g"), (2, b"X")])
    )
    detector.on_vote(
        ValueFaultVote(0, "client", 2, "server", [(0, b"g"), (1, b"Y"), (2, b"g")])
    )
    assert sorted(suspected) == [1, 2]


def test_same_decision_at_every_detector():
    # The property the paper requires: identical vote sets lead every
    # Replication Manager to the same conclusion.
    entries = [(0, b"g"), (1, b"BAD"), (2, b"g")]
    results = []
    for _ in range(3):
        detector, suspected = make_detector(3)
        detector.on_vote(ValueFaultVote(0, "client", 3, "server", entries))
        results.append(tuple(suspected))
    assert results[0] == results[1] == results[2] == (1,)
