"""Unit tests for the trace log."""

from repro.sim.scheduler import Scheduler
from repro.sim.tracing import TraceLog


def test_records_carry_time_and_fields():
    sched = Scheduler()
    trace = TraceLog(sched)
    sched.at(1.5, lambda: trace.record("deliver", proc=0, seq=7))
    sched.run()
    (rec,) = trace.of_kind("deliver")
    assert rec.time == 1.5
    assert rec.proc == 0
    assert rec.seq == 7
    assert rec.get("missing", "default") == "default"


def test_where_filters_on_fields():
    sched = Scheduler()
    trace = TraceLog(sched)
    trace.record("deliver", proc=0, seq=1)
    trace.record("deliver", proc=1, seq=1)
    trace.record("deliver", proc=0, seq=2)
    assert len(trace.where("deliver", proc=0)) == 2
    assert len(trace.where("deliver", proc=0, seq=2)) == 1


def test_of_kinds_merges_in_order():
    sched = Scheduler()
    trace = TraceLog(sched)
    trace.record("a", n=1)
    trace.record("b", n=2)
    trace.record("a", n=3)
    merged = trace.of_kinds("a", "b")
    assert [r.n for r in merged] == [1, 2, 3]


def test_enabled_kinds_filters_noise():
    sched = Scheduler()
    trace = TraceLog(sched, enabled_kinds={"important"})
    trace.record("net.send", x=1)
    trace.record("important", x=2)
    assert trace.count("net.send") == 0
    assert trace.count("important") == 1
    assert trace.kinds() == ["important"]
