"""Unit tests for the trace log."""

from repro.sim.scheduler import Scheduler
from repro.sim.tracing import TraceLog


def test_records_carry_time_and_fields():
    sched = Scheduler()
    trace = TraceLog(sched)
    sched.at(1.5, lambda: trace.record("deliver", proc=0, seq=7))
    sched.run()
    (rec,) = trace.of_kind("deliver")
    assert rec.time == 1.5
    assert rec.proc == 0
    assert rec.seq == 7
    assert rec.get("missing", "default") == "default"


def test_where_filters_on_fields():
    sched = Scheduler()
    trace = TraceLog(sched)
    trace.record("deliver", proc=0, seq=1)
    trace.record("deliver", proc=1, seq=1)
    trace.record("deliver", proc=0, seq=2)
    assert len(trace.where("deliver", proc=0)) == 2
    assert len(trace.where("deliver", proc=0, seq=2)) == 1


def test_of_kinds_merges_in_order():
    sched = Scheduler()
    trace = TraceLog(sched)
    trace.record("a", n=1)
    trace.record("b", n=2)
    trace.record("a", n=3)
    merged = trace.of_kinds("a", "b")
    assert [r.n for r in merged] == [1, 2, 3]


def test_enabled_kinds_filters_noise():
    sched = Scheduler()
    trace = TraceLog(sched, enabled_kinds={"important"})
    trace.record("net.send", x=1)
    trace.record("important", x=2)
    assert trace.count("net.send") == 0
    assert trace.count("important") == 1
    assert trace.kinds() == ["important"]


def test_max_records_evicts_oldest_first():
    sched = Scheduler()
    trace = TraceLog(sched, max_records=3)
    for n in range(5):
        trace.record("tick", n=n)
    assert trace.evicted == 2
    assert [r.n for r in trace.records] == [2, 3, 4]
    assert [r.n for r in trace.of_kind("tick")] == [2, 3, 4]


def test_ring_buffer_keeps_of_kind_and_where_consistent():
    sched = Scheduler()
    trace = TraceLog(sched, max_records=4)
    for n in range(6):
        trace.record("a" if n % 2 == 0 else "b", n=n, proc=n % 3)
    # Retained window is n in {2, 3, 4, 5}.
    assert [r.n for r in trace.of_kind("a")] == [2, 4]
    assert [r.n for r in trace.of_kind("b")] == [3, 5]
    assert trace.count("a") == 2
    assert [r.n for r in trace.where("b", proc=0)] == [3]
    # A kind whose every record was evicted disappears entirely.
    trace2 = TraceLog(sched, max_records=1)
    trace2.record("gone", n=0)
    trace2.record("kept", n=1)
    assert trace2.of_kind("gone") == []
    assert "gone" not in trace2.kinds()


def test_unbounded_trace_never_evicts():
    sched = Scheduler()
    trace = TraceLog(sched)
    for n in range(100):
        trace.record("tick", n=n)
    assert trace.evicted == 0
    assert len(trace.records) == 100
