"""Unit tests for ORB invocation deadlines."""

import pytest

from repro.orb.core import BatchingPolicy, Orb
from repro.orb.giop import InvocationTimeout
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef
from repro.orb.transport import DirectTransport
from repro.sim.faults import FaultPlan, LinkFaults
from repro.sim.network import Network, NetworkParams
from repro.sim.process import Processor
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler

ECHO_IDL = InterfaceDef(
    "Echo", [OperationDef("echo", [ParamDef("t", "string")], result="string")]
)


class EchoServant:
    def echo(self, t):
        return t


def make_world(fault_plan=None):
    sched = Scheduler()
    net = Network(
        sched,
        params=NetworkParams(jitter=0.0),
        rng=RngStreams(1).stream("n"),
        fault_plan=fault_plan,
    )
    orbs = []
    for pid in range(2):
        proc = Processor(pid, sched)
        net.add_processor(proc)
        orb = Orb(proc, sched, batching=BatchingPolicy.disabled())
        orb.set_transport(DirectTransport(net))
        orbs.append(orb)
    ref = orbs[1].register_servant("echo", EchoServant(), ECHO_IDL)
    stub = orbs[0].stub(ECHO_IDL, ref)
    return sched, orbs, stub


def test_reply_in_time_no_timeout():
    sched, orbs, stub = make_world()
    results, errors = [], []
    stub.echo("hi", reply_to=results.append, on_exception=errors.append, timeout=1.0)
    sched.run()
    assert results == ["hi"]
    assert errors == []


def test_lost_reply_triggers_timeout():
    plan = FaultPlan(default=LinkFaults(loss_prob=1.0))
    sched, orbs, stub = make_world(fault_plan=plan)
    results, errors = [], []
    stub.echo("hi", reply_to=results.append, on_exception=errors.append, timeout=0.5)
    sched.run(until=2.0)
    assert results == []
    (error,) = errors
    assert isinstance(error, InvocationTimeout)
    assert orbs[0].stats["requests_timed_out"] == 1


def test_late_reply_after_timeout_is_discarded():
    plan = FaultPlan(default=LinkFaults(extra_delay=1.0))
    sched, orbs, stub = make_world(fault_plan=plan)
    results, errors = [], []
    stub.echo("slow", reply_to=results.append, on_exception=errors.append, timeout=0.5)
    sched.run(until=5.0)
    assert results == []  # the late reply must not fire the handler
    assert len(errors) == 1
    assert isinstance(errors[0], InvocationTimeout)


def test_timeout_without_handler_raises():
    plan = FaultPlan(default=LinkFaults(loss_prob=1.0))
    sched, orbs, stub = make_world(fault_plan=plan)
    stub.echo("hi", reply_to=lambda _r: None, timeout=0.5)
    with pytest.raises(InvocationTimeout):
        sched.run(until=2.0)


def test_no_timeout_waits_indefinitely():
    plan = FaultPlan(default=LinkFaults(loss_prob=1.0))
    sched, orbs, stub = make_world(fault_plan=plan)
    results, errors = [], []
    stub.echo("hi", reply_to=results.append, on_exception=errors.append)
    sched.run(until=30.0)
    assert results == [] and errors == []  # silently pending, as in CORBA
