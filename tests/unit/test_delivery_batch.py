"""White-box tests for the batch-signature pipelined delivery protocol.

One :class:`DeliveryProtocol` on processor 0 of a 3-ring, driven by
hand-built *unsigned* tokens and hand-signed
:class:`TokenCertificate` frames, pinning down the authentication
horizon, delivery gating, certificate arbitration, conviction rules,
and payload fragmentation of the batch pipeline.
"""

import random
from collections import deque

from repro.crypto.costmodel import CryptoCostModel
from repro.crypto.keystore import KeyStore
from repro.multicast.config import MulticastConfig, SecurityLevel
from repro.multicast.delivery import DeliveryProtocol
from repro.multicast.detector import ByzantineFaultDetector
from repro.multicast.messages import MessageFragment, RegularMessage, decode_frame
from repro.multicast.token import Token, TokenCertificate
from repro.sim.network import Network, NetworkParams
from repro.sim.process import Processor
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler


class BatchHarness:
    """Delivery protocol under test on P0 with batch_signatures on."""

    def __init__(self, members=(0, 1, 2), **config_kw):
        self.scheduler = Scheduler()
        self.network = Network(
            self.scheduler,
            params=NetworkParams(jitter=0.0),
            rng=RngStreams(1).stream("net"),
        )
        self.keystore = KeyStore(random.Random(3), modulus_bits=256)
        costs = CryptoCostModel(modulus_bits=256)
        self.processors = {}
        self.signings = {}
        for pid in members:
            proc = Processor(pid, self.scheduler)
            self.network.add_processor(proc)
            self.processors[pid] = proc
            self.signings[pid] = self.keystore.signing_service(proc, costs)
        self.config = MulticastConfig(
            security=SecurityLevel.SIGNATURES,
            batch_signatures=True,
            **config_kw
        )
        self.config.resolve_timeouts(costs, len(members))
        self.delivered = []
        self.detector = ByzantineFaultDetector(0, self.scheduler)
        self.protocol = DeliveryProtocol(
            self.processors[0],
            self.scheduler,
            self.network,
            self.signings[0],
            self.config,
            self.detector,
            lambda sender, seq, group, payload: self.delivered.append(
                (seq, sender, group, payload)
            ),
        )
        self.protocol.active = True
        self.protocol.circulating = False  # drive by hand; no timers
        self.protocol.members = tuple(sorted(members))
        self.protocol.ring_id = 1
        self.protocol._recent_arus = deque(maxlen=len(members))

    def feed_message(self, sender, seq, payload=b"x", group="g"):
        msg = RegularMessage(sender, 1, seq, group, payload)
        raw = msg.encode()
        self.protocol.on_regular(msg, raw)
        return raw

    def token(self, sender, visit, seq, aru=0, digests=(), signed=False, **kw):
        ordered = sorted(self.protocol.members)
        successor = ordered[(ordered.index(sender) + 1) % len(ordered)]
        token = Token(
            sender_id=sender,
            ring_id=1,
            visit=visit,
            seq=seq,
            aru=aru,
            successor=successor,
            message_digest_list=list(digests),
            **kw
        )
        if signed:
            # A Byzantine holder may still sign a token it equivocates
            # about; batch mode does not *require* the signature.
            token.signature = self.signings[sender].sign(token.signable_bytes())
        return token, token.encode()

    def feed_token(self, sender, visit, seq, aru=0, digests=(), signed=False, **kw):
        token, raw = self.token(sender, visit, seq, aru, digests, signed, **kw)
        self.protocol.on_token(token, raw)
        return token, raw

    def certificate(self, signer, first_visit, raws):
        cert = TokenCertificate(
            signer_id=signer,
            ring_id=1,
            first_visit=first_visit,
            digests=[self.digest_of(raw) for raw in raws],
        )
        cert.signature = self.signings[signer].sign_batch(
            cert.signable_bytes(), len(cert.digests)
        )
        return cert, cert.encode()

    def feed_certificate(self, signer, first_visit, raws):
        cert, raw = self.certificate(signer, first_visit, raws)
        self.protocol.on_certificate(cert, raw)
        return cert, raw

    def digest_of(self, raw):
        return self.keystore.digest_fn(raw)


def test_unsigned_token_accepted_in_batch_mode():
    h = BatchHarness()
    token, _ = h.feed_token(1, visit=1, seq=0)
    assert token.signature == 0
    assert h.protocol._last_accepted is token


def test_delivery_gated_on_authentication_horizon():
    h = BatchHarness()
    raw = h.feed_message(1, 1, b"payload")
    _, traw = h.feed_token(1, visit=1, seq=1, digests=[(1, h.digest_of(raw))])
    # Token ordered the message, but no certificate vouches visit 1 yet.
    assert h.delivered == []
    assert h.protocol._auth_visit == 0
    h.feed_certificate(1, first_visit=1, raws=[traw])
    assert h.protocol._auth_visit == 1
    assert h.delivered == [(1, 1, "g", b"payload")]


def test_certificate_spanning_many_visits_settles_all():
    h = BatchHarness()
    token_raws = []
    for visit in (1, 2, 3):
        holder = 1 if visit % 2 else 2
        seq = visit
        mraw = h.feed_message(holder, seq, b"m%d" % seq)
        _, traw = h.feed_token(
            holder, visit=visit, seq=seq, digests=[(seq, h.digest_of(mraw))]
        )
        token_raws.append(traw)
    assert h.delivered == []
    h.feed_certificate(2, first_visit=1, raws=token_raws)
    assert h.protocol._auth_visit == 3
    assert [p for _, _, _, p in h.delivered] == [b"m1", b"m2", b"m3"]


def test_own_certificate_echo_is_ignored():
    h = BatchHarness()
    _, traw = h.feed_token(1, visit=1, seq=0)
    cert, craw = h.certificate(0, first_visit=1, raws=[traw])
    h.protocol.on_certificate(cert, craw)
    # Our own certificate looped back through recovery must not
    # double-apply (the vouches were applied at issue time — and this
    # harness never issued, so nothing settles).
    assert h.protocol._auth_visit == 0


def test_conflicting_certificates_authenticate_nothing():
    h = BatchHarness()
    _, genuine = h.feed_token(1, visit=1, seq=0)
    _, mutant = h.token(1, visit=1, seq=0, rtr_list=[7])
    h.feed_certificate(1, first_visit=1, raws=[genuine])
    assert h.protocol._auth_visit == 1
    h2 = BatchHarness()
    _, genuine2 = h2.feed_token(1, visit=1, seq=0)
    _, mutant2 = h2.token(1, visit=1, seq=0, rtr_list=[7])
    # Two honest-looking signers vouch different bytes: neither is
    # convicted (either may have honestly stored the mutant), and the
    # visit never settles on conflicting testimony.
    h2.feed_certificate(1, first_visit=1, raws=[genuine2])
    h2.feed_certificate(2, first_visit=1, raws=[mutant2])
    assert h2.protocol._auth_visit == 1  # already settled before conflict
    assert h2.detector.suspects() == set()


def test_signer_equivocating_across_certificates_is_convicted():
    h = BatchHarness()
    _, genuine = h.feed_token(1, visit=1, seq=0)
    _, mutant = h.token(1, visit=1, seq=0, rtr_list=[7])
    h.feed_certificate(2, first_visit=1, raws=[genuine])
    # Same signer later vouches different bytes for the same visit:
    # provable certificate equivocation.
    h.feed_certificate(2, first_visit=1, raws=[mutant])
    assert 2 in h.detector.suspects()
    assert "mutant_token" in h.detector.reasons_for(2)


def test_signed_token_contradicting_own_certificate_convicts_holder():
    h = BatchHarness()
    # P1's *signed* mutant token arrives first and becomes the stored copy.
    _, mutant = h.feed_token(1, visit=1, seq=0, rtr_list=[7], signed=True)
    # P1's own certificate then vouches the genuine bytes for visit 1.
    _, genuine = h.token(1, visit=1, seq=0)
    h.feed_certificate(1, first_visit=1, raws=[genuine])
    assert 1 in h.detector.suspects()
    assert "mutant_token" in h.detector.reasons_for(1)
    # An honest co-signer vouching the same genuine bytes is untouched.
    h.feed_certificate(2, first_visit=1, raws=[genuine])
    assert h.detector.suspects() == {1}


def test_vouched_variant_replaces_contradicted_stored_copy():
    h = BatchHarness()
    raw = h.feed_message(1, 1, b"payload")
    # The mutant copy (bad digest for seq 1) is stored first.
    _, mutant = h.feed_token(1, visit=1, seq=1, digests=[(1, b"?" * 16)])
    # The genuine variant arrives as a rebroadcast (same visit).
    genuine_token, genuine = h.token(
        1, visit=1, seq=1, digests=[(1, h.digest_of(raw))]
    )
    h.protocol.on_token(genuine_token, genuine)
    assert h.delivered == []
    # A certificate vouching the genuine bytes arbitrates: the genuine
    # variant is harvested and the message delivers.
    h.feed_certificate(2, first_visit=1, raws=[genuine])
    assert [p for _, _, _, p in h.delivered] == [b"payload"]


def test_large_payload_fragments_and_reassembles():
    h = BatchHarness(fragment_payload_bytes=64)
    payload = bytes(range(256)) * 2  # 512 bytes -> 8 fragments of 64
    h.protocol.queue_message("g", payload)
    queued = list(h.protocol._send_queue)
    assert len(queued) == 8
    frag_msgs = []
    for seq, (group, chunk, frag, _ctx) in enumerate(queued, start=1):
        frag_id, frag_index, frag_total = frag
        assert frag_total == 8 and frag_index == seq - 1
        msg = MessageFragment(1, 1, seq, group, frag_id, frag_index, frag_total, chunk)
        raw = msg.encode()
        assert isinstance(decode_frame(raw), MessageFragment)
        h.protocol.on_regular(msg, raw)
        frag_msgs.append(raw)
    digests = [(seq, h.digest_of(raw)) for seq, raw in enumerate(frag_msgs, start=1)]
    _, traw = h.feed_token(1, visit=1, seq=8, digests=digests)
    h.feed_certificate(1, first_visit=1, raws=[traw])
    # One reassembled delivery, carrying the final fragment's seq.
    assert h.delivered == [(8, 1, "g", payload)]


def test_backpressure_forces_synchronous_certificate():
    h = BatchHarness(members=(0, 1), pipeline_depth=1, signature_batch_visits=64)
    h.protocol.circulating = True
    # P1's token hands the ring to P0 with authentication far behind:
    # visits 1..4 are ordered, none vouched, lag > depth * n = 2.
    raws = []
    for visit in (1, 2, 3):
        _, traw = h.feed_token(1, visit=visit, seq=0)
        raws.append(traw)
    assert h.protocol.stats["certs_signed"] == 0
    h.protocol._originate_token(1)
    assert h.protocol.stats["certs_signed"] == 1
    # Our certificate vouched everything we hold, so the horizon moved.
    assert h.protocol._auth_visit >= 3
