"""Unit tests for majority voting (paper section 6.1)."""

from repro.core.groups import ObjectGroupTable
from repro.core.voting import LateFault, VoteDecision, Voter
from repro.crypto.md4 import md4_digest


def make_voter(degree=3):
    table = ObjectGroupTable()
    table.create("client", list(range(degree)))
    return Voter("server", table, md4_digest), table


OP = ("inv", "client", "server", 0)


def test_no_decision_below_majority():
    voter, _ = make_voter(3)
    assert voter.add_copy("client", OP, 0, b"value") is None
    assert voter.pending_count() == 1


def test_decision_at_majority_of_three():
    voter, _ = make_voter(3)
    voter.add_copy("client", OP, 0, b"value")
    decision = voter.add_copy("client", OP, 1, b"value")
    assert isinstance(decision, VoteDecision)
    assert decision.body == b"value"
    assert decision.faulty_senders == set()
    assert voter.pending_count() == 0


def test_same_sender_does_not_double_count():
    voter, _ = make_voter(3)
    assert voter.add_copy("client", OP, 0, b"value") is None
    assert voter.add_copy("client", OP, 0, b"value") is None  # same replica again


def test_majority_wins_over_corrupt_minority():
    voter, _ = make_voter(3)
    voter.add_copy("client", OP, 2, b"CORRUPT")
    voter.add_copy("client", OP, 0, b"value")
    decision = voter.add_copy("client", OP, 1, b"value")
    assert isinstance(decision, VoteDecision)
    assert decision.body == b"value"
    assert decision.faulty_senders == {2}
    assert set(decision.vote_set) == {
        (0, md4_digest(b"value")),
        (1, md4_digest(b"value")),
        (2, md4_digest(b"CORRUPT")),
    }


def test_late_identical_copy_is_duplicate():
    voter, _ = make_voter(3)
    voter.add_copy("client", OP, 0, b"value")
    voter.add_copy("client", OP, 1, b"value")
    assert voter.add_copy("client", OP, 2, b"value") is None
    assert voter.stats["late_duplicates"] == 1


def test_late_divergent_copy_is_fault():
    voter, _ = make_voter(3)
    voter.add_copy("client", OP, 0, b"value")
    voter.add_copy("client", OP, 1, b"value")
    outcome = voter.add_copy("client", OP, 2, b"CORRUPT")
    assert isinstance(outcome, LateFault)
    assert outcome.sender == 2
    assert (2, md4_digest(b"CORRUPT")) in outcome.vote_set


def test_copy_from_non_member_ignored():
    voter, _ = make_voter(3)
    assert voter.add_copy("client", OP, 99, b"value") is None
    assert voter.stats["copies"] == 0


def test_degree_five_needs_three():
    voter, _ = make_voter(5)
    voter.add_copy("client", OP, 0, b"v")
    assert voter.add_copy("client", OP, 1, b"v") is None
    decision = voter.add_copy("client", OP, 2, b"v")
    assert isinstance(decision, VoteDecision)


def test_voting_is_deterministic_across_voters():
    # Two voters fed the same copies in the same order decide identically.
    voter_a, _ = make_voter(3)
    voter_b, _ = make_voter(3)
    copies = [(2, b"BAD"), (0, b"good"), (1, b"good")]
    outcomes_a = [voter_a.add_copy("client", OP, s, v) for s, v in copies]
    outcomes_b = [voter_b.add_copy("client", OP, s, v) for s, v in copies]
    decision_a = [o for o in outcomes_a if isinstance(o, VoteDecision)][0]
    decision_b = [o for o in outcomes_b if isinstance(o, VoteDecision)][0]
    assert decision_a.body == decision_b.body
    assert decision_a.faulty_senders == decision_b.faulty_senders
    assert decision_a.vote_set == decision_b.vote_set


def test_reconsider_after_degree_shrinks():
    voter, table = make_voter(4)  # majority of 4 is 3
    voter.add_copy("client", OP, 0, b"v")
    assert voter.add_copy("client", OP, 1, b"v") is None
    # Replica 3's processor is excluded: degree drops to 3, majority to 2.
    table.remove_processor(3)
    decisions = voter.reconsider()
    assert len(decisions) == 1
    assert decisions[0].body == b"v"


def test_independent_operations_do_not_interfere():
    voter, _ = make_voter(3)
    op2 = ("inv", "client", "server", 1)
    voter.add_copy("client", OP, 0, b"a")
    voter.add_copy("client", op2, 0, b"b")
    d1 = voter.add_copy("client", OP, 1, b"a")
    d2 = voter.add_copy("client", op2, 1, b"b")
    assert d1.body == b"a"
    assert d2.body == b"b"
