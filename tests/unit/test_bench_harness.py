"""Unit tests for the benchmark harness utilities."""

import pytest

from repro.bench.ablations import format_sweep
from repro.bench.harness import (
    CASE_LABELS,
    CaseResult,
    format_series,
    run_packet_driver_case,
)
from repro.bench.latency import LatencyResult
from repro.core.config import SurvivabilityCase


def test_case_labels_cover_every_case():
    assert set(CASE_LABELS) == set(SurvivabilityCase)


def test_unreplicated_point_runs_fast_and_keeps_up():
    result = run_packet_driver_case(
        SurvivabilityCase.UNREPLICATED, 500e-6, duration=0.05, warmup=0.02
    )
    assert result.offered == pytest.approx(2000)
    assert result.throughput == pytest.approx(result.offered, rel=0.1)
    assert result.received > 0
    assert result.interval_us == pytest.approx(500)


def test_replicated_point_counts_cpu_categories():
    result = run_packet_driver_case(
        SurvivabilityCase.MAJORITY_VOTING, 500e-6, duration=0.05, warmup=0.02
    )
    assert "multicast.receive" in result.cpu
    assert result.throughput > 0


def test_format_series_lines_up():
    results = {
        SurvivabilityCase.UNREPLICATED: [
            CaseResult(SurvivabilityCase.UNREPLICATED, 1e-4, 10000, 9000, 1, 1, {})
        ],
        SurvivabilityCase.FULL_SURVIVABILITY: [
            CaseResult(SurvivabilityCase.FULL_SURVIVABILITY, 1e-4, 10000, 300, 1, 1, {})
        ],
    }
    text = format_series(results)
    assert "9000" in text
    assert "300" in text
    assert "case 1" in text and "case 4" in text


def test_format_sweep():
    rows = [(1, CaseResult(SurvivabilityCase.FULL_SURVIVABILITY, 1e-4, 10000, 111, 1, 1, {}))]
    text = format_sweep("title", "j", rows)
    assert "title" in text and "111" in text


def test_latency_result_statistics():
    result = LatencyResult(SurvivabilityCase.UNREPLICATED, [3.0, 1.0, 2.0, 4.0])
    assert result.count == 4
    assert result.mean == pytest.approx(2.5)
    assert result.median == 3.0  # upper median
    assert result.percentile(0.0) == 1.0
    assert result.percentile(0.99) == 4.0


def test_latency_result_empty():
    result = LatencyResult(SurvivabilityCase.UNREPLICATED, [])
    assert result.count == 0
    assert result.mean == 0.0
    assert result.median == 0.0
    assert result.percentile(0.5) == 0.0


def test_sample_period_records_series_over_the_run():
    from repro.obs import Observability

    obs = Observability()
    result = run_packet_driver_case(
        SurvivabilityCase.UNREPLICATED, 500e-6, duration=0.05, warmup=0.02,
        obs=obs, sample_period=0.01,
    )
    sampler = obs.registry.series_sampler
    assert sampler is not None
    assert len(sampler.times) > 3
    # The traffic curve is recoverable from the sampled series.
    sent = sampler.family_delta("net.frames_sent", 0.0, sampler.times[-1])
    assert sent > 0
    assert result.throughput > 0


def test_sample_period_without_obs_is_an_error():
    with pytest.raises(ValueError):
        run_packet_driver_case(
            SurvivabilityCase.UNREPLICATED, 500e-6, duration=0.05,
            warmup=0.02, sample_period=0.01,
        )
