"""Unit tests for the ORB over the direct (unreplicated) transport."""

import pytest

from repro.orb.core import BatchingPolicy, Orb, OrbCostModel
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef
from repro.orb.transport import DirectTransport
from repro.sim.network import Network, NetworkParams
from repro.sim.process import Processor
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler

ECHO_IDL = InterfaceDef(
    "Echo",
    [
        OperationDef("echo", [ParamDef("text", "string")], result="string"),
        OperationDef("notify", [ParamDef("data", "octets")], oneway=True),
    ],
)


class EchoServant:
    def __init__(self):
        self.notifications = []

    def echo(self, text):
        return text.upper()

    def notify(self, data):
        self.notifications.append(data)


def make_world(batching=None, num=2):
    sched = Scheduler()
    net = Network(
        sched,
        params=NetworkParams(jitter=0.0),
        rng=RngStreams(1).stream("net"),
    )
    orbs = []
    for i in range(num):
        proc = Processor(i, sched)
        net.add_processor(proc)
        orb = Orb(proc, sched, batching=batching or BatchingPolicy.disabled())
        orb.set_transport(DirectTransport(net))
        orbs.append(orb)
    return sched, net, orbs


def test_twoway_invocation_end_to_end():
    sched, _, (client_orb, server_orb) = make_world()
    servant = EchoServant()
    ref = server_orb.register_servant("echo/1", servant, ECHO_IDL)
    stub = client_orb.stub(ECHO_IDL, ref)
    replies = []
    stub.echo("hello", reply_to=replies.append)
    sched.run()
    assert replies == ["HELLO"]


def test_oneway_invocation_end_to_end():
    sched, _, (client_orb, server_orb) = make_world()
    servant = EchoServant()
    ref = server_orb.register_servant("echo/1", servant, ECHO_IDL)
    stub = client_orb.stub(ECHO_IDL, ref)
    stub.notify(b"a")
    stub.notify(b"b")
    sched.run()
    assert servant.notifications == [b"a", b"b"]


def test_batching_coalesces_oneways_on_the_wire():
    batching = BatchingPolicy(max_messages=4, window=1e-3)
    sched, net, (client_orb, server_orb) = make_world(batching=batching)
    servant = EchoServant()
    ref = server_orb.register_servant("echo/1", servant, ECHO_IDL)
    stub = client_orb.stub(ECHO_IDL, ref)
    for i in range(8):
        stub.notify(bytes([i]))
    sched.run()
    assert len(servant.notifications) == 8
    # 8 messages at max_messages=4 -> exactly 2 frames on the wire.
    assert net.stats["sent"] == 2


def test_batch_window_flushes_partial_batch():
    batching = BatchingPolicy(max_messages=100, window=1e-3)
    sched, net, (client_orb, server_orb) = make_world(batching=batching)
    servant = EchoServant()
    ref = server_orb.register_servant("echo/1", servant, ECHO_IDL)
    stub = client_orb.stub(ECHO_IDL, ref)
    stub.notify(b"only")
    sched.run()
    assert servant.notifications == [b"only"]
    assert net.stats["sent"] == 1


def test_twoway_flushes_queued_oneways_first():
    batching = BatchingPolicy(max_messages=100, window=1.0)
    sched, _, (client_orb, server_orb) = make_world(batching=batching)
    servant = EchoServant()
    ref = server_orb.register_servant("echo/1", servant, ECHO_IDL)
    stub = client_orb.stub(ECHO_IDL, ref)
    order = []
    original_notify = servant.notify
    servant.notify = lambda data: (order.append("notify"), original_notify(data))[1]
    original_echo = servant.echo
    servant.echo = lambda text: (order.append("echo"), original_echo(text))[1]
    stub.notify(b"queued")
    stub.echo("x", reply_to=lambda _: None)
    sched.run()
    assert order == ["notify", "echo"]


def test_dispatch_charges_server_cpu():
    sched, _, (client_orb, server_orb) = make_world()
    ref = server_orb.register_servant("echo/1", EchoServant(), ECHO_IDL)
    stub = client_orb.stub(ECHO_IDL, ref)
    stub.notify(b"load")
    sched.run()
    accounting = server_orb.processor.cpu_accounting
    assert accounting.get("orb.unmarshal", 0) > 0
    assert accounting.get("orb.dispatch", 0) > 0


def test_unknown_object_key_is_ignored():
    sched, _, (client_orb, server_orb) = make_world()
    ref = server_orb.register_servant("echo/1", EchoServant(), ECHO_IDL)
    # Point the reference at a key that is not active on the server.
    from repro.orb.ior import ObjectReference

    bogus = ObjectReference("Echo", b"echo/none", host=ref.host)
    stub = client_orb.stub(ECHO_IDL, bogus)
    stub.notify(b"x")
    sched.run()
    assert server_orb.stats["requests_served"] == 0


def test_duplicate_reply_is_ignored():
    sched, _, (client_orb, server_orb) = make_world()
    ref = server_orb.register_servant("echo/1", EchoServant(), ECHO_IDL)
    stub = client_orb.stub(ECHO_IDL, ref)
    replies = []
    stub.echo("hello", reply_to=replies.append)
    sched.run()
    assert replies == ["HELLO"]
    # Re-delivering the same reply must not invoke the handler again.
    from repro.orb.giop import ReplyMessage, REPLY_NO_EXCEPTION
    from repro.orb.idl import InterfaceDef  # noqa: F401  (documentation import)

    op = ECHO_IDL.operation("echo")
    frame = ReplyMessage(0, REPLY_NO_EXCEPTION, op.marshal_result("HELLO")).encode()
    client_orb.deliver_frame(frame, None)
    sched.run()
    assert replies == ["HELLO"]


def test_crashed_client_does_not_flush_batches():
    batching = BatchingPolicy(max_messages=100, window=1e-3)
    sched, net, (client_orb, server_orb) = make_world(batching=batching)
    servant = EchoServant()
    ref = server_orb.register_servant("echo/1", servant, ECHO_IDL)
    stub = client_orb.stub(ECHO_IDL, ref)
    stub.notify(b"doomed")
    client_orb.processor.crash()
    sched.run()
    assert servant.notifications == []


def test_servant_can_invoke_out_through_a_stub():
    # A middle-tier servant forwards to a backend during dispatch.
    sched, _, orbs = make_world(num=3)
    client_orb, middle_orb, backend_orb = orbs

    backend = EchoServant()
    backend_ref = backend_orb.register_servant("echo/backend", backend, ECHO_IDL)

    class ForwardingServant:
        def __init__(self, stub):
            self._stub = stub

        def notify(self, data):
            self._stub.notify(data + b"!")

        def echo(self, text):
            return text

    middle_stub = middle_orb.stub(ECHO_IDL, backend_ref)
    middle_ref = middle_orb.register_servant(
        "echo/middle", ForwardingServant(middle_stub), ECHO_IDL
    )
    stub = client_orb.stub(ECHO_IDL, middle_ref)
    stub.notify(b"hop")
    sched.run()
    assert backend.notifications == [b"hop!"]
