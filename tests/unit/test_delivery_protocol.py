"""White-box unit tests for the message delivery protocol.

These drive one :class:`DeliveryProtocol` instance directly, feeding it
hand-built tokens and messages, so the ordering, retransmission, aru,
idle-parking, and garbage-collection rules are each pinned down in
isolation (the integration suites cover the emergent behaviour).
"""

import random

import pytest

from repro.crypto.costmodel import CryptoCostModel
from repro.crypto.keystore import KeyStore
from repro.multicast.config import MulticastConfig, SecurityLevel
from repro.multicast.delivery import DeliveryProtocol
from repro.multicast.detector import ByzantineFaultDetector
from repro.multicast.messages import RegularMessage, decode_frame
from repro.multicast.token import Token
from repro.sim.network import Network, NetworkParams
from repro.sim.process import Processor
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler


class Harness:
    """One delivery protocol under test on processor 0 of a 3-ring."""

    def __init__(self, security=SecurityLevel.DIGESTS, members=(0, 1, 2)):
        self.scheduler = Scheduler()
        self.network = Network(
            self.scheduler,
            params=NetworkParams(jitter=0.0),
            rng=RngStreams(1).stream("net"),
        )
        self.keystore = KeyStore(random.Random(3), modulus_bits=256)
        costs = CryptoCostModel(modulus_bits=256)
        self.processors = {}
        self.signings = {}
        for pid in members:
            proc = Processor(pid, self.scheduler)
            self.network.add_processor(proc)
            self.processors[pid] = proc
            self.signings[pid] = self.keystore.signing_service(proc, costs)
        self.config = MulticastConfig(security=security)
        self.config.resolve_timeouts(costs, len(members))
        self.delivered = []
        self.detector = ByzantineFaultDetector(0, self.scheduler)
        self.protocol = DeliveryProtocol(
            self.processors[0],
            self.scheduler,
            self.network,
            self.signings[0],
            self.config,
            self.detector,
            lambda sender, seq, group, payload: self.delivered.append(
                (seq, sender, group, payload)
            ),
        )
        self.protocol.active = True
        self.protocol.circulating = False  # drive by hand; no timers
        self.protocol.members = tuple(sorted(members))
        self.protocol.ring_id = 1
        from collections import deque

        self.protocol._recent_arus = deque(maxlen=len(members))

    def message(self, sender, seq, payload=b"x", group="g"):
        msg = RegularMessage(sender, 1, seq, group, payload)
        return msg, msg.encode()

    def feed_message(self, sender, seq, payload=b"x", group="g"):
        msg, raw = self.message(sender, seq, payload, group)
        self.protocol.on_regular(msg, raw)
        return raw

    def token(self, sender, visit, seq, aru=0, digests=(), **kw):
        members = self.protocol.members
        ordered = sorted(members)
        successor = ordered[(ordered.index(sender) + 1) % len(ordered)]
        token = Token(
            sender_id=sender,
            ring_id=1,
            visit=visit,
            seq=seq,
            aru=aru,
            successor=successor,
            message_digest_list=list(digests),
            **kw,
        )
        if self.config.security.signatures_enabled:
            token.signature = self.signings[sender].sign(token.signable_bytes())
        return token, token.encode()

    def feed_token(self, sender, visit, seq, aru=0, digests=(), **kw):
        token, raw = self.token(sender, visit, seq, aru, digests, **kw)
        self.protocol.on_token(token, raw)
        return token, raw

    def digest_of(self, raw):
        return self.keystore.digest_fn(raw)


def test_message_without_covering_token_is_not_delivered():
    h = Harness()
    h.feed_message(1, 1)
    assert h.delivered == []


def test_message_delivered_once_token_brings_digest():
    h = Harness()
    raw = h.feed_message(1, 1, b"payload")
    h.feed_token(1, visit=1, seq=1, digests=[(1, h.digest_of(raw))])
    assert h.delivered == [(1, 1, "g", b"payload")]


def test_out_of_order_messages_delivered_in_seq_order():
    h = Harness()
    raw2 = h.feed_message(1, 2, b"two")
    raw1 = h.feed_message(1, 1, b"one")
    h.feed_token(
        1, visit=1, seq=2, digests=[(1, h.digest_of(raw1)), (2, h.digest_of(raw2))]
    )
    assert [p for _, _, _, p in h.delivered] == [b"one", b"two"]


def test_gap_blocks_delivery_until_filled():
    h = Harness()
    raw1 = h.feed_message(1, 1, b"one")
    raw3 = h.feed_message(1, 3, b"three")
    h.feed_token(
        1, visit=1, seq=3,
        digests=[(1, h.digest_of(raw1)), (2, b"?" * 16), (3, h.digest_of(raw3))],
    )
    assert [p for _, _, _, p in h.delivered] == [b"one"]
    raw2 = h.feed_message(1, 2, b"two")
    # Digest mismatch for seq 2 (token says "?"*16): not delivered.
    assert [p for _, _, _, p in h.delivered] == [b"one"]


def test_corrupt_variant_rejected_good_variant_delivered():
    h = Harness()
    good = h.feed_message(1, 1, b"good")
    h.feed_message(1, 1, b"evil")  # mutant variant, same seq
    h.feed_token(1, visit=1, seq=1, digests=[(1, h.digest_of(good))])
    assert [p for _, _, _, p in h.delivered] == [b"good"]


def test_masqueraded_sender_rejected_at_delivery():
    h = Harness()
    # Message claims sender 2, but the covering token was originated
    # (and its digest vouched for) by holder 1.
    msg, raw = h.message(2, 1, b"forged")
    h.protocol.on_regular(msg, raw)
    h.feed_token(1, visit=1, seq=1, digests=[(1, h.digest_of(raw))])
    assert h.delivered == []


def test_none_level_delivers_without_digests():
    h = Harness(security=SecurityLevel.NONE)
    h.feed_message(1, 1, b"payload")
    assert h.delivered == [(1, 1, "g", b"payload")]


def test_duplicate_message_ignored():
    h = Harness(security=SecurityLevel.NONE)
    h.feed_message(1, 1)
    h.feed_message(1, 1)
    assert len(h.delivered) == 1


def test_absurd_seq_is_rejected():
    h = Harness()
    h.feed_message(1, 2**40)
    assert 2**40 not in h.protocol._received
    assert h.protocol._max_seq_seen == 0


def test_token_extends_seq_horizon():
    h = Harness()
    h.feed_token(1, visit=1, seq=50)
    assert h.protocol._max_seq_seen == 50


def test_stale_ring_token_ignored():
    h = Harness()
    token, raw = h.token(1, visit=1, seq=5)
    token.ring_id = 9
    h.protocol.on_token(token, raw)
    assert h.protocol._last_accepted is None


def test_malformed_token_suspected():
    h = Harness(security=SecurityLevel.SIGNATURES)
    token, _ = h.token(1, visit=1, seq=5)
    token.aru = 10  # aru > seq: malformed
    token.signature = h.signings[1].sign(token.signable_bytes())
    h.protocol.on_token(token, token.encode())
    assert "malformed_token" in h.detector.reasons_for(1)


def test_bad_signature_dropped_silently():
    h = Harness(security=SecurityLevel.SIGNATURES)
    token, _ = h.token(1, visit=1, seq=0)
    token.signature = 12345  # forged
    h.protocol.on_token(token, token.encode())
    assert h.protocol._last_accepted is None
    assert h.detector.suspects() == set()


def test_mutant_tokens_convict_sender():
    h = Harness(security=SecurityLevel.SIGNATURES)
    h.feed_token(1, visit=1, seq=0)
    mutant, raw = h.token(1, visit=1, seq=1)  # same visit, different seq
    h.protocol.on_token(mutant, raw)
    assert "mutant_token" in h.detector.reasons_for(1)


def test_retransmitted_identical_token_is_benign():
    h = Harness(security=SecurityLevel.SIGNATURES)
    token, raw = h.feed_token(1, visit=1, seq=0)
    h.protocol.on_token(token, raw)  # exact retransmission
    assert h.detector.suspects() == set()


def test_historical_token_absorbed_without_moving_chain_head():
    h = Harness()
    h.feed_token(1, visit=5, seq=0)
    head = h.protocol._last_accepted
    raw1 = h.feed_message(1, 1, b"late")
    h.feed_token(1, visit=3, seq=1, digests=[(1, h.digest_of(raw1))])
    assert h.protocol._last_accepted is head  # chain head unchanged
    assert [p for _, _, _, p in h.delivered] == [b"late"]  # digest recovered


def test_originate_sends_queued_messages_up_to_j():
    h = Harness(security=SecurityLevel.NONE)
    h.protocol.circulating = True
    h.protocol.start_ring((0, 1, 2), 1, 0)
    for i in range(10):
        h.protocol.queue_message("g", b"q%d" % i)
    h.scheduler.run(until=0.1)
    # j = 6 messages maximum in the first visit.
    sent_after_first_visit = h.protocol.stats["sent"]
    assert sent_after_first_visit >= 6
    assert h.protocol.queue_length() <= 4


def test_aru_update_lowers_to_own_coverage():
    h = Harness()
    protocol = h.protocol
    previous, _ = h.token(2, visit=4, seq=10, aru=8)
    protocol._max_seq_seen = 10
    protocol._delivered_up_to = 5
    aru, aru_id = protocol._update_aru(previous)
    assert (aru, aru_id) == (5, 0)


def test_aru_update_raises_own_pin():
    h = Harness()
    protocol = h.protocol
    protocol._delivered_up_to = 9
    protocol._max_seq_seen = 10
    previous, _ = h.token(2, visit=4, seq=10, aru=5, aru_id=0)
    aru, aru_id = protocol._update_aru(previous)
    assert aru == 9
    assert aru_id == 0  # still below seq: we keep the pin


def test_aru_update_respects_other_pin():
    h = Harness()
    protocol = h.protocol
    protocol._delivered_up_to = 10
    protocol._max_seq_seen = 10
    previous, _ = h.token(2, visit=4, seq=10, aru=3, aru_id=1)
    aru, aru_id = protocol._update_aru(previous)
    assert (aru, aru_id) == (3, 1)  # P1 pinned it; not ours to raise


def test_gc_waits_for_full_rotation_window():
    h = Harness(security=SecurityLevel.NONE, members=(0, 1, 2))
    protocol = h.protocol
    h.feed_message(1, 1)
    assert 1 in protocol._received
    # Fewer arus than the window: no collection yet.
    protocol._collect_garbage(5)
    assert 1 in protocol._received
    protocol._collect_garbage(5)
    protocol._collect_garbage(5)
    assert 1 not in protocol._received  # 3-member window complete


def test_gc_uses_minimum_of_window():
    h = Harness(security=SecurityLevel.NONE)
    protocol = h.protocol
    h.feed_message(1, 1)
    protocol._collect_garbage(5)
    protocol._collect_garbage(0)  # someone still lacks everything
    protocol._collect_garbage(5)
    assert 1 in protocol._received  # min of window is 0


def test_missing_seqs_include_digestless_messages():
    h = Harness()
    raw = h.feed_message(1, 1)
    h.protocol._max_seq_seen = 2
    missing = h.protocol._missing_seqs()
    assert missing == {1, 2}  # 1 lacks its digest, 2 lacks bytes
