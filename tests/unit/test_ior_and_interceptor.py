"""Unit tests for object references and the interception hook."""

import pytest

from repro.orb.core import OrbCostModel
from repro.orb.interceptor import ImmuneInterceptor
from repro.orb.ior import ObjectReference


def test_reference_identity_is_type_and_key():
    a = ObjectReference("Bank", "bank")
    b = ObjectReference("Bank", b"bank", host=3)
    c = ObjectReference("Bank", "other")
    assert a == b  # location does not affect identity
    assert hash(a) == hash(b)
    assert a != c


def test_reference_group_name():
    ref = ObjectReference("Bank", "bank-group")
    assert ref.group_name == "bank-group"
    assert ref.object_key == b"bank-group"


def test_reference_accepts_str_or_bytes_keys():
    assert ObjectReference("T", "k").object_key == ObjectReference("T", b"k").object_key


class RecordingManager:
    def __init__(self):
        self.bound = None
        self.outgoing = []

    def bind_orb(self, orb):
        self.bound = orb

    def outgoing_iiop(self, reference, frame, source_key):
        self.outgoing.append((reference, frame, source_key))


class FakeOrb:
    class processor:
        proc_id = 0

        @staticmethod
        def register_handler(port, fn):
            pass


def test_interceptor_binds_and_diverts_frames():
    manager = RecordingManager()
    interceptor = ImmuneInterceptor(manager)
    orb = FakeOrb()
    interceptor.attach(orb)
    assert manager.bound is orb
    ref = ObjectReference("T", "group")
    interceptor.send_frames(ref, [b"frame-1", b"frame-2"], b"client")
    assert manager.outgoing == [
        (ref, b"frame-1", b"client"),
        (ref, b"frame-2", b"client"),
    ]


def test_orb_cost_model_scaling():
    costs = OrbCostModel(marshal_base=10e-6, marshal_per_byte=1e-9, dispatch_base=50e-6)
    assert costs.marshal_cost(0) == pytest.approx(10e-6)
    assert costs.marshal_cost(1000) == pytest.approx(11e-6)
    assert costs.dispatch_cost() == pytest.approx(50e-6)
