"""Unit tests for the perf-trajectory aggregator (:mod:`repro.bench.trend`)."""

import json

import pytest

from repro.bench.trend import (
    TrendInputError,
    build_report,
    collect,
    main,
    render_table,
)


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def seed_artifacts(tmp_path):
    write(tmp_path, "BENCH_pr2.json", {
        "bench": "pr2-hot-path-overhaul",
        "speedup": 2.095, "min_speedup": 2.0, "ok": True,
    })
    write(tmp_path, "BENCH_pr5.json", {
        "bench": "cluster-scaling",
        "scaling_2_rings": 1.944, "scaling_4_rings": 4.373,
    })
    write(tmp_path, "BENCH_pr7.json", {
        "bench": "pr7-batch-signature-pipeline",
        "throughput_ratio": 6.66, "min_ratio": 3.0, "ok": True,
    })


def test_collect_extracts_all_headlines(tmp_path):
    seed_artifacts(tmp_path)
    entries = collect(str(tmp_path))
    assert [e["file"] for e in entries] == [
        "BENCH_pr2.json", "BENCH_pr5.json", "BENCH_pr7.json"
    ]
    report = build_report(entries)
    assert len(report["rows"]) == 4
    assert report["all_gates_ok"] is True
    values = {row["metric"]: row["value"] for row in report["rows"]}
    assert values["hot-path wall-clock speedup"] == 2.095
    assert values["aggregate throughput scaling, 2 rings"] == 1.944
    assert values["aggregate throughput scaling, 4 rings"] == 4.373
    assert values["batch-signature simulated throughput ratio"] == 6.66


def test_collect_skips_trend_and_scratch_copies(tmp_path):
    seed_artifacts(tmp_path)
    write(tmp_path, "BENCH_trend.json", {"bench": "trend"})
    write(tmp_path, "BENCH_pr2-rerun.json", {"bench": "pr2-hot-path-overhaul"})
    write(tmp_path, "BENCH_pr7-baseline.json", {"bench": "x"})
    entries = collect(str(tmp_path))
    assert [e["file"] for e in entries] == [
        "BENCH_pr2.json", "BENCH_pr5.json", "BENCH_pr7.json"
    ]


def test_unrecognised_artifact_is_listed_not_fatal(tmp_path):
    seed_artifacts(tmp_path)
    write(tmp_path, "BENCH_pr99.json", {"bench": "future-thing", "x": 1})
    entries = collect(str(tmp_path))
    entry = next(e for e in entries if e["file"] == "BENCH_pr99.json")
    assert entry["rows"] == []
    assert "no recognised headline" in render_table(entries)


def test_self_describing_headline_needs_no_code_changes(tmp_path):
    # A future artifact carrying its own headline rows (the BENCH_wan
    # convention) is picked up by the fallback extractor: rows render,
    # gates count, sort order stays stable — no per-bench code needed.
    seed_artifacts(tmp_path)
    write(tmp_path, "BENCH_wan.json", {
        "bench": "wan-federation",
        "ok": True,
        "headline": [
            {"metric": "worst local p50 deviation vs baseline",
             "value": 0.0001, "unit": "fraction", "gate": "<= 0.05",
             "ok": True},
            {"metric": "geo-bank conserved through site compromise",
             "value": 1, "unit": "bool", "gate": "== 1", "ok": True},
            {"metric": "malformed row without a metric"},
        ],
    })
    entries = collect(str(tmp_path))
    assert [e["file"] for e in entries] == [
        "BENCH_pr2.json", "BENCH_pr5.json", "BENCH_pr7.json",
        "BENCH_wan.json",
    ]
    wan = next(e for e in entries if e["file"] == "BENCH_wan.json")
    assert [row["metric"] for row in wan["rows"]] == [
        "worst local p50 deviation vs baseline",
        "geo-bank conserved through site compromise",
    ]
    report = build_report(entries)
    assert report["all_gates_ok"] is True
    table = render_table(entries)
    assert "BENCH_wan.json" in table
    assert "worst local p50 deviation" in table
    assert "<= 0.05" in table  # string gates render verbatim


def test_self_describing_headline_gate_failure_counts(tmp_path):
    seed_artifacts(tmp_path)
    write(tmp_path, "BENCH_wan.json", {
        "bench": "wan-federation",
        "headline": [
            {"metric": "worst local p50 deviation vs baseline",
             "value": 0.2, "unit": "fraction", "gate": "<= 0.05",
             "ok": False},
        ],
    })
    entries = collect(str(tmp_path))
    assert build_report(entries)["all_gates_ok"] is False
    assert main(["--dir", str(tmp_path), "--no-write"]) == 1


def test_unparsable_artifact_raises(tmp_path):
    (tmp_path / "BENCH_bad.json").write_text("{nope")
    with pytest.raises(TrendInputError, match="BENCH_bad.json"):
        collect(str(tmp_path))


def test_failed_gate_flips_exit_code_and_flag(tmp_path):
    write(tmp_path, "BENCH_pr2.json", {
        "bench": "pr2-hot-path-overhaul",
        "speedup": 1.2, "min_speedup": 2.0, "ok": False,
    })
    entries = collect(str(tmp_path))
    assert build_report(entries)["all_gates_ok"] is False
    assert "FAIL" in render_table(entries)
    assert main(["--dir", str(tmp_path), "--no-write"]) == 1


def test_cli_writes_deterministic_trend_json(tmp_path, capsys):
    seed_artifacts(tmp_path)
    assert main(["--dir", str(tmp_path)]) == 0
    out = tmp_path / "BENCH_trend.json"
    first = out.read_bytes()
    assert main(["--dir", str(tmp_path)]) == 0
    assert out.read_bytes() == first
    report = json.loads(first)
    assert report["bench"] == "trend"
    assert report["artifacts"] == [
        "BENCH_pr2.json", "BENCH_pr5.json", "BENCH_pr7.json"
    ]
    table = capsys.readouterr().out
    assert "perf trajectory" in table
    assert "2.10x" in table and "6.66x" in table


def test_cli_errors_on_empty_directory(tmp_path, capsys):
    assert main(["--dir", str(tmp_path)]) == 2
    assert "no BENCH_" in capsys.readouterr().err


def test_every_committed_artifact_contributes_headline_rows():
    # Every BENCH_*.json actually committed at the repo root must render
    # rows in the trend table — a bench whose artifact hits the
    # "(no recognised headline)" fallback warning has broken the
    # self-describing-headline contract.
    import os

    repo_root = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
    entries = collect(repo_root)
    assert entries, "no BENCH_*.json artifacts at the repo root"
    for entry in entries:
        assert entry["rows"], "%s contributes no headline rows" % entry["file"]
    assert "no recognised headline" not in render_table(entries)
