"""Unit tests for the Table 2/4/5 history checkers themselves.

A checker that passes everything proves nothing: each test here builds
a small synthetic history containing exactly one violation and asserts
the checker flags it (plus a clean-history control).
"""

from repro.bench.properties import (
    delivery_violations,
    detector_violations,
    membership_violations,
)
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import TraceLog


def make_trace():
    return TraceLog(Scheduler())


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------

def test_clean_delivery_history_passes():
    trace = make_trace()
    for proc in (0, 1):
        for seq in (1, 2, 3):
            trace.record("multicast.deliver", proc=proc, ring=1, seq=seq, sender=0,
                         group="g", digest=b"d%d" % seq)
    assert delivery_violations(trace, {0, 1}) == []


def test_integrity_violation_flagged():
    trace = make_trace()
    trace.record("multicast.deliver", proc=0, ring=1, seq=1, sender=0, group="g", digest=b"d")
    trace.record("multicast.deliver", proc=0, ring=1, seq=1, sender=0, group="g", digest=b"d")
    violations = delivery_violations(trace, {0})
    assert any("integrity" in v for v in violations)


def test_total_order_violation_flagged():
    trace = make_trace()
    trace.record("multicast.deliver", proc=0, ring=1, seq=2, sender=0, group="g", digest=b"b")
    trace.record("multicast.deliver", proc=0, ring=1, seq=1, sender=0, group="g", digest=b"a")
    violations = delivery_violations(trace, {0})
    assert any("total order" in v for v in violations)


def test_uniqueness_violation_flagged():
    trace = make_trace()
    trace.record("multicast.deliver", proc=0, ring=1, seq=1, sender=0, group="g", digest=b"x")
    trace.record("multicast.deliver", proc=1, ring=1, seq=1, sender=0, group="g", digest=b"y")
    violations = delivery_violations(trace, {0, 1})
    assert any("uniqueness" in v for v in violations)


def test_reliable_delivery_violation_flagged():
    trace = make_trace()
    trace.record("membership.install", proc=0, ring=1, members=(0, 1), excluded=(), cut=0)
    trace.record("membership.install", proc=1, ring=1, members=(0, 1), excluded=(), cut=0)
    trace.record("multicast.deliver", proc=0, ring=1, seq=1, sender=0, group="g", digest=b"a")
    violations = delivery_violations(trace, {0, 1})
    assert any("reliable delivery" in v for v in violations)


def test_faulty_processors_excluded_from_delivery_checks():
    trace = make_trace()
    # The faulty processor delivers garbage; only correct ones matter.
    trace.record("multicast.deliver", proc=2, ring=1, seq=1, sender=0, group="g", digest=b"x")
    trace.record("multicast.deliver", proc=2, ring=1, seq=1, sender=0, group="g", digest=b"y")
    assert delivery_violations(trace, {0, 1}) == []


# ----------------------------------------------------------------------
# Table 4
# ----------------------------------------------------------------------

def _install(trace, proc, ring, members):
    trace.record("membership.install", proc=proc, ring=ring, members=tuple(members),
                 excluded=(), cut=0)


def test_clean_membership_history_passes():
    trace = make_trace()
    for proc in (0, 1):
        _install(trace, proc, 1, (0, 1, 2))
        _install(trace, proc, 2, (0, 1))
    assert membership_violations(trace, {0, 1}, faulty={2}) == []


def test_membership_uniqueness_violation():
    trace = make_trace()
    _install(trace, 0, 1, (0, 1))
    _install(trace, 1, 1, (0, 1, 2))
    violations = membership_violations(trace, {0, 1})
    assert any("uniqueness" in v for v in violations)


def test_self_inclusion_violation():
    trace = make_trace()
    _install(trace, 0, 1, (1, 2))
    violations = membership_violations(trace, {0, 1, 2})
    assert any("self-inclusion" in v for v in violations)


def test_eventual_exclusion_violation_readmission():
    trace = make_trace()
    _install(trace, 0, 1, (0, 1, 2))
    _install(trace, 0, 2, (0, 1))
    _install(trace, 0, 3, (0, 1, 2))  # readmits the faulty processor
    violations = membership_violations(trace, {0, 1}, faulty={2})
    assert any("eventual exclusion" in v for v in violations)


def test_eventual_inclusion_violation():
    trace = make_trace()
    _install(trace, 0, 1, (0, 2))  # final membership omits correct P1
    violations = membership_violations(trace, {0, 1})
    assert any("eventual inclusion" in v for v in violations)


def test_divergent_histories_flagged():
    trace = make_trace()
    _install(trace, 0, 1, (0, 1, 2))
    _install(trace, 0, 2, (0, 1))
    _install(trace, 1, 1, (0, 1, 2))
    _install(trace, 1, 3, (0, 1))
    violations = membership_violations(trace, {0, 1})
    assert any("divergent" in v or "total order" in v for v in violations)


# ----------------------------------------------------------------------
# Table 5
# ----------------------------------------------------------------------

def test_completeness_violation():
    trace = make_trace()
    trace.record("detector.suspect", observer=0, suspect=9, reason="fail_to_send", new=True)
    violations = detector_violations(trace, {0, 1}, faulty={9})
    assert any("completeness: correct P1" in v for v in violations)


def test_accuracy_violation():
    trace = make_trace()
    trace.record("detector.suspect", observer=0, suspect=1, reason="fail_to_send", new=True)
    violations = detector_violations(trace, {0, 1})
    assert any("accuracy" in v for v in violations)


def test_absolution_clears_transient_suspicion():
    trace = make_trace()
    trace.record("detector.suspect", observer=0, suspect=1, reason="fail_to_send", new=True)
    trace.record("detector.absolve", observer=0, suspect=1,
                 cleared=("fail_to_send",), fully=True)
    assert detector_violations(trace, {0, 1}) == []


def test_partial_absolution_keeps_suspicion():
    trace = make_trace()
    trace.record("detector.suspect", observer=0, suspect=1, reason="mutant_token", new=True)
    trace.record("detector.suspect", observer=0, suspect=1, reason="fail_to_send", new=False)
    trace.record("detector.absolve", observer=0, suspect=1,
                 cleared=("fail_to_send",), fully=False)
    violations = detector_violations(trace, {0, 1})
    assert any("accuracy" in v for v in violations)
