"""Unit tests for invocation spans."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SPAN_STAGES, InvocationSpan, SpanTracker
from repro.sim.scheduler import Scheduler


class FakeClock:
    def __init__(self):
        self.now = 0.0


def tracker(**kwargs):
    t = SpanTracker(**kwargs)
    t.bind(FakeClock())
    return t


def test_stage_order_and_breakdown():
    clock = FakeClock()
    spans = SpanTracker().bind(clock)
    key = ("client", 0)
    spans.begin(key, oneway=False)
    for offset, stage in enumerate(SPAN_STAGES):
        clock.now = 0.1 * offset
        spans.mark(key, stage)
    span = spans.get(key)
    assert span.closed
    assert span.last_stage == "reply_voted"
    breakdown = span.breakdown()
    assert breakdown[0] == ("intercepted", 0.0)
    for stage, delta in breakdown[1:]:
        assert delta == pytest.approx(0.1)
    assert span.end_to_end() == pytest.approx(0.1 * (len(SPAN_STAGES) - 1))


def test_first_mark_wins():
    clock = FakeClock()
    spans = SpanTracker().bind(clock)
    clock.now = 1.0
    spans.mark(("g", 0), "intercepted")
    clock.now = 2.0
    spans.mark(("g", 0), "intercepted")  # a second replica, later
    assert spans.get(("g", 0)).marks["intercepted"] == 1.0


def test_unknown_stage_rejected():
    span = InvocationSpan(("g", 0), oneway=False)
    with pytest.raises(ValueError):
        span.mark("teleported", 0.0)


def test_oneway_closes_at_dispatch():
    clock = FakeClock()
    spans = SpanTracker().bind(clock)
    key = ("client", 1)
    spans.begin(key, oneway=True)
    for stage in ("intercepted", "multicast_queued", "ordered", "voted"):
        spans.mark(key, stage)
    assert not spans.get(key).closed
    spans.mark(key, "dispatched")
    assert spans.get(key).closed
    assert spans.closed_spans() == [spans.get(key)]


def test_unclosed_spans_are_reported_not_dropped():
    clock = FakeClock()
    spans = SpanTracker().bind(clock)
    spans.begin(("client", 0), oneway=False)
    spans.mark(("client", 0), "intercepted")
    spans.mark(("client", 0), "ordered")
    (open_span,) = spans.open_spans()
    assert open_span.last_stage == "ordered"
    assert not open_span.closed
    assert open_span.to_dict()["last_stage"] == "ordered"
    assert spans.stage_breakdown() == []  # aggregates cover closed only


def test_closing_feeds_registry():
    registry = MetricsRegistry()
    clock = FakeClock()
    spans = SpanTracker(registry=registry).bind(clock)
    key = ("client", 2)
    spans.begin(key, oneway=True)
    for offset, stage in enumerate(
        ("intercepted", "multicast_queued", "ordered", "voted", "dispatched")
    ):
        clock.now = 0.01 * offset
        spans.mark(key, stage)
    assert registry.value("span.closed") == 1
    hist = registry.histogram("span.stage_seconds", stage="voted")
    assert hist.count == 1
    assert hist.sum == pytest.approx(0.01)
    e2e = registry.histogram("span.end_to_end_seconds")
    assert e2e.count == 1
    assert e2e.sum == pytest.approx(0.04)
    # Closing is recorded once; an extra late mark does not double-count.
    spans.mark(key, "executed")
    assert registry.value("span.closed") == 1


def test_eviction_keeps_open_spans():
    clock = FakeClock()
    spans = SpanTracker(max_spans=2).bind(clock)
    for n in range(4):
        key = ("g", n)
        spans.begin(key, oneway=True)
        for stage in ("intercepted", "multicast_queued", "ordered", "voted"):
            spans.mark(key, stage)
        if n != 1:  # span 1 stays open
            spans.mark(key, "dispatched")
    assert spans.evicted == 2
    assert spans.get(("g", 1)) is not None  # open spans always retained
    assert len(spans.spans()) == 2


def test_works_with_real_scheduler():
    scheduler = Scheduler()
    spans = SpanTracker().bind(scheduler)
    key = ("client", 0)
    scheduler.at(0.5, spans.mark, key, "intercepted", label="t")
    scheduler.at(1.5, spans.mark, key, "ordered", label="t")
    scheduler.run()
    assert spans.get(key).marks == {"intercepted": 0.5, "ordered": 1.5}


def test_open_spans_oneway_vs_two_way():
    clock = FakeClock()
    spans = SpanTracker().bind(clock)
    # A one-way invocation closes at dispatch; a two-way one stays open
    # through the whole reply path until reply_voted.
    shared = ("intercepted", "multicast_queued", "ordered", "voted", "dispatched")
    spans.begin(("g", 0), oneway=True)
    spans.begin(("g", 1), oneway=False)
    for stage in shared:
        clock.now += 0.1
        spans.mark(("g", 0), stage)
        spans.mark(("g", 1), stage)
    assert spans.open_spans() == [spans.get(("g", 1))]
    assert spans.get(("g", 0)).closed and not spans.get(("g", 1)).closed
    for stage in ("executed", "reply_gateway_forwarded", "reply_ordered"):
        clock.now += 0.1
        spans.mark(("g", 1), stage)
    assert spans.open_spans() == [spans.get(("g", 1))]
    assert spans.get(("g", 1)).last_stage == "reply_ordered"
    clock.now += 0.1
    spans.mark(("g", 1), "reply_voted")
    assert spans.open_spans() == []
    assert len(spans.closed_spans()) == 2


def test_begin_counts_opened_spans():
    registry = MetricsRegistry()
    clock = FakeClock()
    spans = SpanTracker(registry=registry).bind(clock)
    spans.begin(("g", 0), oneway=False)
    spans.begin(("g", 1), oneway=True)
    spans.begin(("g", 1), oneway=True)  # same key: still one span
    assert registry.value("span.opened") == 2
    assert registry.value("span.closed") == 0
