"""Regression tests for ring-size-scaled default timeout derivation.

The bug class pinned here: a :class:`MulticastConfig`'s derived
``token_rotation_timeout`` used to be fixed once, so a config resolved
for a small ring and then reused for a bigger one (cluster rings of
different sizes, or a ring growing on rejoin) kept a timeout one full
rotation of the bigger ring could exceed — correct-but-slow processors
got suspected, violating eventual strong accuracy.
"""

import pytest

from repro.crypto.costmodel import CryptoCostModel
from repro.multicast.config import MulticastConfig, SecurityLevel

COSTS = CryptoCostModel(modulus_bits=256)


def resolved(num_processors, security=SecurityLevel.SIGNATURES, **kwargs):
    config = MulticastConfig(security=security, **kwargs)
    config.resolve_timeouts(COSTS, num_processors)
    return config


def test_derived_timeouts_scale_with_ring_size():
    small = resolved(2)
    large = resolved(7)
    # One rotation visits every processor, so a 7-processor ring needs
    # proportionally longer timeouts than a 2-processor one.
    assert large.token_rotation_timeout > small.token_rotation_timeout
    assert large.membership_round_timeout > small.membership_round_timeout
    assert large.token_rotation_timeout == pytest.approx(
        small.token_rotation_timeout * 7 / 2
    )


def test_derived_timeouts_exceed_a_full_rotation():
    for n in (2, 7):
        config = resolved(n)
        per_visit = (
            config.token_hold_cost
            + config.token_idle_delay
            + 200e-6
            + COSTS.sign_cost()
            + 2 * COSTS.verify_cost()
        )
        assert config.token_rotation_timeout >= 4 * per_visit * n
        assert config.membership_round_timeout > config.token_rotation_timeout


def test_signature_costs_lengthen_derived_timeouts():
    assert (
        resolved(7, security=SecurityLevel.SIGNATURES).token_rotation_timeout
        > resolved(7, security=SecurityLevel.DIGESTS).token_rotation_timeout
    )


def test_reresolving_for_a_bigger_ring_grows_the_derived_timeout():
    config = resolved(2)
    small_rotation = config.token_rotation_timeout
    small_membership = config.membership_round_timeout
    config.resolve_timeouts(COSTS, 7)
    assert config.token_rotation_timeout > small_rotation
    assert config.membership_round_timeout > small_membership


def test_reresolving_for_a_smaller_ring_keeps_the_larger_timeout():
    # Growth-only: shrinking the membership must never tighten timeouts
    # under a live protocol (a pending round still expects the old bound).
    config = resolved(7)
    big_rotation = config.token_rotation_timeout
    big_membership = config.membership_round_timeout
    config.resolve_timeouts(COSTS, 2)
    assert config.token_rotation_timeout == big_rotation
    assert config.membership_round_timeout == big_membership


def test_explicit_timeouts_are_never_overwritten():
    config = MulticastConfig(
        token_rotation_timeout=1.0, membership_round_timeout=2.0
    )
    config.resolve_timeouts(COSTS, 2)
    config.resolve_timeouts(COSTS, 7)
    assert config.token_rotation_timeout == 1.0
    assert config.membership_round_timeout == 2.0


def test_partially_explicit_config_derives_only_the_missing_timeout():
    config = MulticastConfig(token_rotation_timeout=1.0)
    config.resolve_timeouts(COSTS, 7)
    assert config.token_rotation_timeout == 1.0
    assert config.membership_round_timeout is not None
    config.resolve_timeouts(COSTS, 12)
    assert config.token_rotation_timeout == 1.0
