"""Unit tests for the naming service servant and reference codec."""

import pytest

from repro.orb.ior import ObjectReference
from repro.workloads.naming import (
    AlreadyBound,
    InvalidName,
    NamingServant,
    NotFound,
    NAMING_IDL,
    destringify_reference,
    stringify_reference,
)


@pytest.fixture
def ns():
    return NamingServant()


def test_bind_and_resolve(ns):
    ns.bind("services/bank", "Bank|bank")
    assert ns.resolve("services/bank") == "Bank|bank"


def test_duplicate_bind_raises(ns):
    ns.bind("a", "X|x")
    with pytest.raises(AlreadyBound):
        ns.bind("a", "Y|y")
    assert ns.resolve("a") == "X|x"


def test_rebind_replaces(ns):
    ns.bind("a", "X|x")
    ns.rebind("a", "Y|y")
    assert ns.resolve("a") == "Y|y"


def test_resolve_unknown_raises(ns):
    with pytest.raises(NotFound):
        ns.resolve("missing")


def test_unbind(ns):
    ns.bind("a", "X|x")
    ns.unbind("a")
    with pytest.raises(NotFound):
        ns.resolve("a")
    with pytest.raises(NotFound):
        ns.unbind("a")


@pytest.mark.parametrize("bad", ["", "/leading", "trailing/", "a//b"])
def test_invalid_names_rejected(ns, bad):
    with pytest.raises(InvalidName):
        ns.bind(bad, "X|x")
    with pytest.raises(InvalidName):
        ns.resolve(bad)


def test_list_names_by_prefix(ns):
    ns.bind("services/bank", "B|b")
    ns.bind("services/fusion", "F|f")
    ns.bind("admin/console", "C|c")
    assert ns.list_names("services/") == ["services/bank", "services/fusion"]
    assert ns.list_names("") == [
        "admin/console",
        "services/bank",
        "services/fusion",
    ]


def test_state_roundtrip(ns):
    ns.bind("a/b", "X|x")
    ns.bind("c", "Y|y")
    clone = NamingServant.from_state(ns.get_state())
    assert clone.resolve("a/b") == "X|x"
    assert clone.list_names("") == ns.list_names("")


def test_reference_stringification_roundtrip():
    reference = ObjectReference("Bank", "bank-group")
    text = stringify_reference(reference)
    back = destringify_reference(text)
    assert back.type_id == "Bank"
    assert back.group_name == "bank-group"


def test_idl_exceptions_declared():
    resolve = NAMING_IDL.operation("resolve")
    assert resolve.exception_for(NotFound.repository_id) is NotFound
    bind = NAMING_IDL.operation("bind")
    assert bind.exception_for(AlreadyBound.repository_id) is AlreadyBound
