"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.scheduler import Scheduler, SimulationError


def test_events_run_in_time_order():
    sched = Scheduler()
    seen = []
    sched.at(2.0, seen.append, "b")
    sched.at(1.0, seen.append, "a")
    sched.at(3.0, seen.append, "c")
    sched.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_run_in_schedule_order():
    sched = Scheduler()
    seen = []
    for i in range(10):
        sched.at(1.0, seen.append, i)
    sched.run()
    assert seen == list(range(10))


def test_priority_orders_simultaneous_events():
    sched = Scheduler()
    seen = []
    sched.at(1.0, seen.append, "timer", priority=Scheduler.PRIORITY_TIMER)
    sched.at(1.0, seen.append, "normal", priority=Scheduler.PRIORITY_NORMAL)
    sched.run()
    assert seen == ["normal", "timer"]


def test_after_is_relative_to_now():
    sched = Scheduler()
    times = []
    sched.at(5.0, lambda: sched.after(2.0, lambda: times.append(sched.now)))
    sched.run()
    assert times == [7.0]


def test_cannot_schedule_in_the_past():
    sched = Scheduler()
    sched.at(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.at(1.0, lambda: None)


def test_negative_delay_rejected():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sched = Scheduler()
    seen = []
    event = sched.at(1.0, seen.append, "x")
    event.cancel()
    sched.run()
    assert seen == []


def test_run_until_leaves_later_events_queued():
    sched = Scheduler()
    seen = []
    sched.at(1.0, seen.append, "early")
    sched.at(10.0, seen.append, "late")
    end = sched.run(until=5.0)
    assert seen == ["early"]
    assert end == 5.0
    assert sched.pending() == 1
    sched.run()
    assert seen == ["early", "late"]


def test_run_until_advances_clock_even_when_queue_empties():
    sched = Scheduler()
    sched.at(1.0, lambda: None)
    end = sched.run(until=9.0)
    assert end == 9.0
    assert sched.now == 9.0


def test_stop_halts_the_loop():
    sched = Scheduler()
    seen = []
    sched.at(1.0, seen.append, "a")
    sched.at(2.0, lambda: sched.stop())
    sched.at(3.0, seen.append, "c")
    sched.run()
    assert seen == ["a"]
    assert sched.pending() == 1


def test_max_events_bounds_execution():
    sched = Scheduler()
    seen = []
    for i in range(5):
        sched.at(float(i + 1), seen.append, i)
    sched.run(max_events=3)
    assert seen == [0, 1, 2]


def test_events_executed_counter():
    sched = Scheduler()
    for i in range(4):
        sched.at(float(i), lambda: None)
    sched.run()
    assert sched.events_executed == 4


# ----------------------------------------------------------------------
# lazy deletion and heap compaction
# ----------------------------------------------------------------------

from repro import perf  # noqa: E402


@pytest.mark.parametrize("optimized", [True, False])
def test_cancelled_pending_counts_exactly(optimized):
    with perf.mode(optimized):
        sched = Scheduler()
        events = [sched.at(float(i + 1), lambda: None) for i in range(10)]
        assert sched.cancelled_pending == 0
        events[0].cancel()
        events[1].cancel()
        events[1].cancel()  # idempotent: must not double-count
        assert sched.cancelled_pending == 2
        assert sched.pending() == 8


@pytest.mark.parametrize("optimized", [True, False])
def test_compaction_bounds_heap_size(optimized):
    """Cancelling most of the heap shrinks it instead of leaving garbage."""
    with perf.mode(optimized):
        sched = Scheduler()
        events = [sched.at(float(i + 1), lambda: None) for i in range(100)]
        for event in events[:90]:
            event.cancel()
        # compaction keeps the heap at most ~2x the live count
        assert len(sched._queue) <= 2 * sched.pending() + 1
        assert sched.pending() == 10
        assert sched.cancelled_pending <= sched.pending()


@pytest.mark.parametrize("optimized", [True, False])
def test_order_preserved_across_compaction(optimized):
    """Survivors still fire in (time, priority, seq) order after compaction."""
    with perf.mode(optimized):
        sched = Scheduler()
        seen = []
        keep = []
        for i in range(50):
            event = sched.at(float(50 - i), seen.append, 50 - i)
            if i % 5:
                event.cancel()
            else:
                keep.append(50 - i)
        sched.run()
        assert seen == sorted(keep)
        assert sched.cancelled_pending == 0


@pytest.mark.parametrize("optimized", [True, False])
def test_cancel_during_run_is_safe(optimized):
    """A callback cancelling future events (compacting mid-run) is safe."""
    with perf.mode(optimized):
        sched = Scheduler()
        seen = []
        victims = [sched.at(2.0 + i * 0.01, seen.append, "victim") for i in range(40)]
        survivor = sched.at(3.0, seen.append, "survivor")

        def massacre():
            seen.append("massacre")
            for event in victims:
                event.cancel()

        sched.at(1.0, massacre)
        sched.run()
        assert seen == ["massacre", "survivor"]
        assert survivor is not None
        assert sched.pending() == 0


def test_every_fires_at_fixed_period():
    sched = Scheduler()
    ticks = []
    sched.every(0.5, lambda: ticks.append(sched.now), label="tick")
    sched.run(until=2.25)
    assert ticks == [0.5, 1.0, 1.5, 2.0]


def test_every_cancel_before_run_means_no_ticks():
    sched = Scheduler()
    ticks = []
    handle = sched.every(0.5, lambda: ticks.append(sched.now))
    handle.cancel()
    sched.run(until=5.0)
    assert ticks == []


def test_every_cancel_mid_run():
    sched = Scheduler()
    ticks = []
    handle = sched.every(0.5, lambda: ticks.append(sched.now))
    sched.at(1.2, handle.cancel)
    sched.run(until=5.0)
    assert ticks == [0.5, 1.0]
    handle.cancel()  # idempotent after the fact


def test_every_rejects_nonpositive_period():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.every(0.0, lambda: None)
    with pytest.raises(SimulationError):
        sched.every(-1.0, lambda: None)
