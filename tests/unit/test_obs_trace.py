"""Unit tests for the causal trace collector (:mod:`repro.obs.trace`)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    TraceCollector,
    TraceInputError,
    export_traces,
    fork_summary,
    load_traces,
    render_digest,
    render_trace_tree,
    render_waterfall,
    tail_exemplars,
    trace_id_for,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def tick(self, dt=0.001):
        self.now += dt
        return self.now


def collector(sample_every=1, registry=None):
    c = TraceCollector(registry=registry, sample_every=sample_every)
    clock = FakeClock()
    c.bind(clock)
    return c, clock


REQ_STAGES = ("intercepted", "multicast_queued", "ordered", "voted",
              "dispatched", "executed", "reply_ordered", "reply_voted")


def closed_trace(c, clock, key=("driver", 1)):
    """Walk one invocation through the stage backbone plus ring nodes."""
    c.begin(key)
    payload = b"payload-%r" % (key,)
    c.register_payload(payload, key, "req", ("stage", "multicast_queued"))
    for stage in REQ_STAGES[:2]:
        c.mark_stage(key, stage)
        clock.tick()
    ctx = c.context_for(payload)
    assert ctx == (key, "req", ("stage", "multicast_queued"))
    c.copy_sent(ctx, sender=3, seq=7)
    clock.tick()
    c.token_covered(7, {"holder": 0, "visit": 2, "token_seq": 7})
    c.certified({"signer": 0, "first_visit": 1, "last_visit": 2, "count": 2})
    c.delivered(7, sender=3, covering_visit=2)
    for stage in REQ_STAGES[2:]:
        c.mark_stage(key, stage)
        clock.tick()
    c.vote_copy(key, "req", sender=3)
    c.vote_decided(key, "req")
    return key


def test_trace_id_is_deterministic_and_short():
    assert trace_id_for(("driver", 1)) == trace_id_for(("driver", 1))
    assert trace_id_for(("driver", 1)) != trace_id_for(("driver", 2))
    assert len(trace_id_for(("driver", 1))) == 16
    assert int(trace_id_for(("driver", 1)), 16) >= 0


def test_sample_every_one_keeps_everything():
    c, _ = collector(sample_every=1)
    for op in range(20):
        assert c.is_sampled(("g", op))
    assert c.sampled == 20 and c.dropped == 0


def test_sampling_is_deterministic_and_counts_drops():
    registry = MetricsRegistry()
    c, _ = collector(sample_every=4, registry=registry)
    keys = [("g", op) for op in range(64)]
    decisions = [c.is_sampled(k) for k in keys]
    assert any(decisions) and not all(decisions)
    assert c.sampled == sum(decisions)
    assert c.dropped == len(decisions) - sum(decisions)
    assert registry.value("trace.sampled") == c.sampled
    assert registry.value("trace.dropped") == c.dropped
    # same decisions from a fresh collector: hash-based, not stateful
    c2, _ = collector(sample_every=4)
    assert [c2.is_sampled(k) for k in keys] == decisions


def test_unsampled_keys_record_nothing():
    c, clock = collector(sample_every=2)
    dropped_key = next(
        ("g", op) for op in range(64) if not c.is_sampled(("g", op))
    )
    c.begin(dropped_key)
    c.mark_stage(dropped_key, "intercepted")
    c.register_payload(b"x", dropped_key, "req", ("stage", "intercepted"))
    assert c.get(dropped_key) is None
    assert c.context_for(b"x") is None


def test_invalid_sample_every_rejected():
    with pytest.raises(ValueError):
        TraceCollector(sample_every=0)


def test_first_stage_mark_wins():
    c, clock = collector()
    key = ("driver", 1)
    c.begin(key)
    c.mark_stage(key, "intercepted")
    first_time = c.get(key).nodes[("stage", "intercepted")]["time"]
    clock.tick()
    c.mark_stage(key, "intercepted")
    assert c.get(key).nodes[("stage", "intercepted")]["time"] == first_time


def test_assembled_record_closes_and_connects():
    c, clock = collector()
    key = closed_trace(c, clock)
    (record,) = c.assemble()
    assert record["closed"] is True
    assert record["key"] == list(key)
    assert record["end_to_end"] == pytest.approx(0.008)
    kinds = {tuple(node["node"])[0] for node in record["nodes"]}
    assert {"stage", "copy", "token", "cert", "delivered",
            "vote_copy", "vote_decided"} <= kinds
    causal = [e for e in record["edges"] if e[2] == "causal"]
    timing = [e for e in record["edges"] if e[2] == "timing"]
    assert causal and len(timing) == len(REQ_STAGES) - 1
    # every node except the roots has an incoming causal edge or is a stage
    ids_with_parent = {e[1] for e in causal}
    for node in record["nodes"]:
        if node["node"][0] != "stage":
            assert node["id"] in ids_with_parent or node["node"][0] == "stage"
    # per-cause sums in the record equal the timing-edge row sums
    from_edges = {}
    for edge in timing:
        for cause, seconds in edge[3]:
            from_edges[cause] = from_edges.get(cause, 0.0) + seconds
    assert from_edges == record["cause_seconds"]
    assert sum(record["cause_seconds"].values()) == pytest.approx(
        record["end_to_end"]
    )


def test_retransmission_nodes_count_attempts():
    c, clock = collector()
    key = ("driver", 9)
    c.begin(key)
    c.register_payload(b"p", key, "req", ("stage", "multicast_queued"))
    c.mark_stage(key, "multicast_queued")
    c.copy_sent(c.context_for(b"p"), sender=4, seq=11)
    c.retransmitted(11, sender=4)
    c.retransmitted(11, sender=0)  # another holder services the request
    c.retransmitted(11, sender=4)
    trace = c.get(key)
    assert trace.nodes[("retransmit", "req", 0, 4)]["attrs"]["count"] == 2
    assert trace.nodes[("retransmit", "req", 0, 0)]["attrs"]["count"] == 1


def test_fork_summary_sees_three_branches_and_merge():
    c, clock = collector()
    key = ("driver", 2)
    c.begin(key)
    c.mark_stage(key, "intercepted")
    c.vote_copy(key, "req", sender=3, shard=0)
    c.vote_decided(key, "req", shard=0)
    clock.tick()
    for via, corrupt in ((9, True), (10, False), (11, False)):
        c.gateway_forwarded(key, "req", via, from_ring=0, to_ring=1,
                            corrupt=corrupt, shard=0)
    clock.tick()
    for sender in (9, 10, 11):
        c.vote_copy(key, "req", sender=sender, shard=1)
    c.vote_decided(key, "req", shard=1)
    (record,) = c.assemble()
    shape = fork_summary(record)
    assert shape == {"fork_width": 3, "merged": True, "corrupt_branches": 1}


def test_summary_and_exemplars():
    c, clock = collector()
    closed_trace(c, clock, key=("driver", 1))
    closed_trace(c, clock, key=("driver", 2))
    records = c.assemble()
    summary = c.summary(records)
    assert summary["traces"] == 2 and summary["closed"] == 2
    assert summary["sampled"] == 2 and summary["dropped"] == 0
    exemplars = tail_exemplars(records, limit=1)
    assert len(exemplars) == 1
    assert exemplars[0]["top_cause"] is not None


def test_export_roundtrip_and_render_smoke(tmp_path):
    c, clock = collector()
    closed_trace(c, clock)
    records = c.assemble()
    summary = c.summary(records)
    path = tmp_path / "traces.jsonl"
    export_traces(str(path), records, summary, {"workload": "unit"})
    loaded, loaded_summary, run_info = load_traces(str(path))
    assert loaded == records  # JSON round-trips listify tuples already
    assert loaded_summary["traces"] == 1
    assert run_info["workload"] == "unit"
    tree = render_trace_tree(loaded[0])
    assert "stage intercepted" in tree and "vote_decided" in tree
    waterfall = render_waterfall(loaded[0])
    assert "reply_voted" in waterfall
    digest = render_digest(loaded_summary)
    assert "1 trace" in digest or "traces" in digest


def test_load_traces_rejects_missing_and_empty(tmp_path):
    with pytest.raises(TraceInputError):
        load_traces(str(tmp_path / "absent.jsonl"))
    empty = tmp_path / "empty.jsonl"
    empty.write_text('{"record": "trace_run"}\n')
    with pytest.raises(TraceInputError, match="no trace records"):
        load_traces(str(empty))
