"""Unit tests for IDL interfaces, stubs, and skeletons."""

import pytest

from repro.orb.idl import IdlError, InterfaceDef, OperationDef, ParamDef


@pytest.fixture
def counter_idl():
    return InterfaceDef(
        "Counter",
        [
            OperationDef("add", [ParamDef("amount", "long")], result="long"),
            OperationDef(
                "set_label",
                [ParamDef("label", "string")],
                oneway=True,
            ),
            OperationDef("snapshot", [], result=("sequence", "long")),
        ],
    )


class CounterServant:
    def __init__(self):
        self.value = 0
        self.label = ""
        self.history = []

    def add(self, amount):
        self.value += amount
        self.history.append(self.value)
        return self.value

    def set_label(self, label):
        self.label = label

    def snapshot(self):
        return list(self.history)


class RecordingOrb:
    """Stands in for the real ORB underneath a stub."""

    def __init__(self):
        self.calls = []

    def send_request(self, reference, operation, body, reply_handler, timeout=None):
        self.calls.append((reference, operation, body, reply_handler))


def test_operation_marshal_roundtrip(counter_idl):
    op = counter_idl.operation("add")
    body = op.marshal_args([41])
    assert op.unmarshal_args(body) == [41]
    result = op.marshal_result(42)
    assert op.unmarshal_result(result) == 42


def test_oneway_cannot_have_result():
    with pytest.raises(IdlError):
        OperationDef("bad", [], result="long", oneway=True)


def test_duplicate_operation_rejected():
    with pytest.raises(IdlError):
        InterfaceDef("X", [OperationDef("op"), OperationDef("op")])


def test_unknown_operation_rejected(counter_idl):
    with pytest.raises(IdlError):
        counter_idl.operation("subtract")


def test_wrong_arity_rejected(counter_idl):
    with pytest.raises(IdlError):
        counter_idl.operation("add").marshal_args([1, 2])


def test_bad_argument_type_reports_parameter(counter_idl):
    with pytest.raises(IdlError) as err:
        counter_idl.operation("set_label").marshal_args([42])
    assert "label" in str(err.value)


def test_skeleton_dispatch(counter_idl):
    servant = CounterServant()
    skeleton = counter_idl.skeleton_for(servant)
    op = counter_idl.operation("add")
    result_body = skeleton.dispatch("add", op.marshal_args([5]))
    assert op.unmarshal_result(result_body) == 5
    assert servant.value == 5


def test_skeleton_void_result(counter_idl):
    skeleton = counter_idl.skeleton_for(CounterServant())
    body = counter_idl.operation("set_label").marshal_args(["hello"])
    assert skeleton.dispatch("set_label", body) == b""


def test_skeleton_missing_method(counter_idl):
    class Empty:
        pass

    skeleton = counter_idl.skeleton_for(Empty())
    with pytest.raises(IdlError):
        skeleton.dispatch("add", counter_idl.operation("add").marshal_args([1]))


def test_stub_marshals_and_sends(counter_idl):
    orb = RecordingOrb()
    stub = counter_idl.stub_for(orb, "ref")
    results = []
    stub.add(41, reply_to=results.append)
    ((reference, operation, body, reply_handler),) = orb.calls
    assert reference == "ref"
    assert operation.name == "add"
    assert operation.unmarshal_args(body) == [41]
    # Simulate the reply arriving.
    from repro.orb.giop import REPLY_NO_EXCEPTION

    reply_handler(REPLY_NO_EXCEPTION, operation.marshal_result(42))
    assert results == [42]


def test_stub_oneway_has_no_reply_handler(counter_idl):
    orb = RecordingOrb()
    stub = counter_idl.stub_for(orb, "ref")
    stub.set_label("hi")
    ((_, operation, _, reply_handler),) = orb.calls
    assert operation.oneway
    assert reply_handler is None


def test_stub_unknown_operation(counter_idl):
    stub = counter_idl.stub_for(RecordingOrb(), "ref")
    with pytest.raises(IdlError):
        stub.nonexistent()


# ----------------------------------------------------------------------
# IDL attributes
# ----------------------------------------------------------------------

from repro.orb.idl import AttributeDef  # noqa: E402


@pytest.fixture
def thermostat_idl():
    return InterfaceDef(
        "Thermostat",
        [
            AttributeDef("target_c", "long"),
            AttributeDef("model", "string", readonly=True),
            OperationDef("tick", [], result="long"),
        ],
    )


class ThermostatServant:
    model = "TX-9"

    def __init__(self):
        self.target_c = 20

    def tick(self):
        return self.target_c


def test_attribute_expands_to_accessor_operations(thermostat_idl):
    assert "_get_target_c" in thermostat_idl.operations
    assert "_set_target_c" in thermostat_idl.operations
    assert "_get_model" in thermostat_idl.operations
    assert "_set_model" not in thermostat_idl.operations  # readonly


def test_attribute_get_dispatch(thermostat_idl):
    skeleton = thermostat_idl.skeleton_for(ThermostatServant())
    op = thermostat_idl.operation("_get_target_c")
    assert op.unmarshal_result(skeleton.dispatch("_get_target_c", b"")) == 20


def test_attribute_set_dispatch(thermostat_idl):
    servant = ThermostatServant()
    skeleton = thermostat_idl.skeleton_for(servant)
    op = thermostat_idl.operation("_set_target_c")
    skeleton.dispatch("_set_target_c", op.marshal_args([25]))
    assert servant.target_c == 25


def test_readonly_attribute_get(thermostat_idl):
    skeleton = thermostat_idl.skeleton_for(ThermostatServant())
    op = thermostat_idl.operation("_get_model")
    assert op.unmarshal_result(skeleton.dispatch("_get_model", b"")) == "TX-9"


def test_attribute_accessors_work_through_stub(thermostat_idl):
    orb = RecordingOrb()
    stub = thermostat_idl.stub_for(orb, "ref")
    results = []
    stub._get_target_c(reply_to=results.append)
    ((_, operation, _, reply_handler),) = orb.calls
    assert operation.name == "_get_target_c"
    from repro.orb.giop import REPLY_NO_EXCEPTION

    reply_handler(REPLY_NO_EXCEPTION, operation.marshal_result(21))
    assert results == [21]


def test_servant_method_overrides_attribute_bridge(thermostat_idl):
    class CustomServant(ThermostatServant):
        def _get_target_c(self):
            return 99

    skeleton = thermostat_idl.skeleton_for(CustomServant())
    op = thermostat_idl.operation("_get_target_c")
    assert op.unmarshal_result(skeleton.dispatch("_get_target_c", b"")) == 99


def test_marshal_args_memo_matches_generic(counter_idl):
    """The marshal memo returns the generic encoder's exact bytes and
    falls back cleanly for unhashable arguments."""
    from repro import perf

    add = counter_idl.operation("add")
    bulk = OperationDef("bulk", [ParamDef("values", ("sequence", "long"))], oneway=True)
    with perf.mode(True):
        assert add.marshal_args([7]) == add._marshal_args([7])
        # second call is a cache hit; bytes must not change
        assert add.marshal_args([7]) == add._marshal_args([7])
        # list arguments are unhashable: the memo falls through cleanly
        assert bulk.marshal_args([[1, 2, 3]]) == bulk._marshal_args([[1, 2, 3]])
    with perf.mode(False):
        baseline = add.marshal_args([7])
    with perf.mode(True):
        assert add.marshal_args([7]) == baseline


def test_marshal_args_memo_distinguishes_values(counter_idl):
    from repro import perf

    add = counter_idl.operation("add")
    with perf.mode(True):
        assert add.marshal_args([1]) != add.marshal_args([2])
