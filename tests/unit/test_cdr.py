"""Unit tests for CDR marshalling."""

import pytest

from repro.orb.cdr import CdrDecoder, CdrEncoder, MarshalError


def roundtrip(tag, value):
    data = CdrEncoder().write(tag, value).getvalue()
    return CdrDecoder(data).read(tag)


@pytest.mark.parametrize(
    "tag,value",
    [
        ("boolean", True),
        ("boolean", False),
        ("octet", 255),
        ("short", -12345),
        ("ushort", 54321),
        ("long", -2_000_000_000),
        ("ulong", 4_000_000_000),
        ("longlong", -(2**62)),
        ("ulonglong", 2**63),
        ("double", 3.141592653589793),
        ("string", "hello world"),
        ("string", ""),
        ("string", "ünïcödé"),
        ("octets", b"\x00\x01\xff"),
        ("octets", b""),
        (("sequence", "long"), [1, -2, 3]),
        (("sequence", "string"), ["a", "bb", ""]),
        (("sequence", ("sequence", "octet")), [[1, 2], [], [3]]),
        (
            ("struct", (("id", "ulong"), ("name", "string"))),
            {"id": 7, "name": "replica"},
        ),
    ],
)
def test_roundtrip(tag, value):
    assert roundtrip(tag, value) == value


def test_float_roundtrip_is_approximate():
    assert roundtrip("float", 1.5) == 1.5  # exactly representable


COLOR = ("enum", ("RED", "GREEN", "BLUE"))
SHAPE = (
    "union",
    (("circle", "double"), ("label", "string"), ("points", ("sequence", "long"))),
)


@pytest.mark.parametrize("value", ["RED", "GREEN", "BLUE"])
def test_enum_roundtrip(value):
    assert roundtrip(COLOR, value) == value


def test_enum_is_marshalled_as_ordinal():
    data = CdrEncoder().write(COLOR, "BLUE").getvalue()
    assert data == (2).to_bytes(4, "little")


def test_enum_unknown_member_rejected():
    with pytest.raises(MarshalError):
        CdrEncoder().write(COLOR, "MAUVE")


def test_enum_out_of_range_ordinal_rejected():
    data = (9).to_bytes(4, "little")
    with pytest.raises(MarshalError):
        CdrDecoder(data).read(COLOR)


@pytest.mark.parametrize(
    "value",
    [("circle", 2.5), ("label", "hello"), ("points", [1, 2, 3])],
)
def test_union_roundtrip(value):
    assert roundtrip(SHAPE, value) == value


def test_union_unknown_case_rejected():
    with pytest.raises(MarshalError):
        CdrEncoder().write(SHAPE, ("triangle", 1))


def test_union_requires_pair():
    with pytest.raises(MarshalError):
        CdrEncoder().write(SHAPE, "circle")


def test_union_bad_discriminator_rejected():
    data = (9).to_bytes(4, "little")
    with pytest.raises(MarshalError):
        CdrDecoder(data).read(SHAPE)


def test_enum_inside_struct_and_sequence():
    tag = ("struct", (("colors", ("sequence", COLOR)), ("pick", SHAPE)))
    value = {"colors": ["RED", "RED", "BLUE"], "pick": ("label", "x")}
    assert roundtrip(tag, value) == value


def test_alignment_of_mixed_fields():
    encoder = CdrEncoder()
    encoder.write("octet", 1)
    encoder.write("ulong", 0x11223344)  # must align to offset 4
    data = encoder.getvalue()
    assert len(data) == 8
    assert data[1:4] == b"\x00\x00\x00"
    decoder = CdrDecoder(data)
    assert decoder.read("octet") == 1
    assert decoder.read("ulong") == 0x11223344


def test_alignment_of_double_after_short():
    encoder = CdrEncoder()
    encoder.write("short", 1)
    encoder.write("double", 2.0)
    data = encoder.getvalue()
    assert len(data) == 16
    decoder = CdrDecoder(data)
    decoder.read("short")
    assert decoder.read("double") == 2.0


def test_string_includes_nul_in_length():
    data = CdrEncoder().write("string", "ab").getvalue()
    assert data[:4] == (3).to_bytes(4, "little")
    assert data[4:7] == b"ab\x00"


def test_truncated_data_raises():
    data = CdrEncoder().write("ulong", 7).getvalue()
    with pytest.raises(MarshalError):
        CdrDecoder(data[:2]).read("ulong")


def test_truncated_string_raises():
    data = CdrEncoder().write("string", "hello").getvalue()
    with pytest.raises(MarshalError):
        CdrDecoder(data[:-2]).read("string")


def test_string_without_nul_raises():
    encoder = CdrEncoder()
    encoder.write("ulong", 2)
    data = encoder.getvalue() + b"ab"
    with pytest.raises(MarshalError):
        CdrDecoder(data).read("string")


def test_absurd_sequence_length_raises():
    data = CdrEncoder().write("ulong", 2**31).getvalue()
    with pytest.raises(MarshalError):
        CdrDecoder(data).read(("sequence", "octet"))


def test_unknown_tag_raises():
    with pytest.raises(MarshalError):
        CdrEncoder().write("wchar", "x")
    with pytest.raises(MarshalError):
        CdrDecoder(b"\x00\x00\x00\x00").read(("map", "x"))


def test_type_mismatch_raises():
    with pytest.raises(MarshalError):
        CdrEncoder().write("string", 42)
    with pytest.raises(MarshalError):
        CdrEncoder().write("octets", "not bytes")
    with pytest.raises(MarshalError):
        CdrEncoder().write(("sequence", "long"), 42)
    with pytest.raises(MarshalError):
        CdrEncoder().write("ulong", -1)


def test_struct_missing_field_raises():
    tag = ("struct", (("a", "long"), ("b", "long")))
    with pytest.raises(MarshalError):
        CdrEncoder().write(tag, {"a": 1})


def test_decoder_position_tracking():
    data = CdrEncoder().write("ulong", 1).write("ulong", 2).getvalue()
    decoder = CdrDecoder(data)
    assert decoder.remaining() == 8
    decoder.read("ulong")
    assert decoder.position == 4
    assert not decoder.at_end()
    decoder.read("ulong")
    assert decoder.at_end()
