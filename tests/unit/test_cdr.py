"""Unit tests for CDR marshalling."""

import pytest

from repro.orb.cdr import CdrDecoder, CdrEncoder, MarshalError


def roundtrip(tag, value):
    data = CdrEncoder().write(tag, value).getvalue()
    return CdrDecoder(data).read(tag)


@pytest.mark.parametrize(
    "tag,value",
    [
        ("boolean", True),
        ("boolean", False),
        ("octet", 255),
        ("short", -12345),
        ("ushort", 54321),
        ("long", -2_000_000_000),
        ("ulong", 4_000_000_000),
        ("longlong", -(2**62)),
        ("ulonglong", 2**63),
        ("double", 3.141592653589793),
        ("string", "hello world"),
        ("string", ""),
        ("string", "ünïcödé"),
        ("octets", b"\x00\x01\xff"),
        ("octets", b""),
        (("sequence", "long"), [1, -2, 3]),
        (("sequence", "string"), ["a", "bb", ""]),
        (("sequence", ("sequence", "octet")), [[1, 2], [], [3]]),
        (
            ("struct", (("id", "ulong"), ("name", "string"))),
            {"id": 7, "name": "replica"},
        ),
    ],
)
def test_roundtrip(tag, value):
    assert roundtrip(tag, value) == value


def test_float_roundtrip_is_approximate():
    assert roundtrip("float", 1.5) == 1.5  # exactly representable


COLOR = ("enum", ("RED", "GREEN", "BLUE"))
SHAPE = (
    "union",
    (("circle", "double"), ("label", "string"), ("points", ("sequence", "long"))),
)


@pytest.mark.parametrize("value", ["RED", "GREEN", "BLUE"])
def test_enum_roundtrip(value):
    assert roundtrip(COLOR, value) == value


def test_enum_is_marshalled_as_ordinal():
    data = CdrEncoder().write(COLOR, "BLUE").getvalue()
    assert data == (2).to_bytes(4, "little")


def test_enum_unknown_member_rejected():
    with pytest.raises(MarshalError):
        CdrEncoder().write(COLOR, "MAUVE")


def test_enum_out_of_range_ordinal_rejected():
    data = (9).to_bytes(4, "little")
    with pytest.raises(MarshalError):
        CdrDecoder(data).read(COLOR)


@pytest.mark.parametrize(
    "value",
    [("circle", 2.5), ("label", "hello"), ("points", [1, 2, 3])],
)
def test_union_roundtrip(value):
    assert roundtrip(SHAPE, value) == value


def test_union_unknown_case_rejected():
    with pytest.raises(MarshalError):
        CdrEncoder().write(SHAPE, ("triangle", 1))


def test_union_requires_pair():
    with pytest.raises(MarshalError):
        CdrEncoder().write(SHAPE, "circle")


def test_union_bad_discriminator_rejected():
    data = (9).to_bytes(4, "little")
    with pytest.raises(MarshalError):
        CdrDecoder(data).read(SHAPE)


def test_enum_inside_struct_and_sequence():
    tag = ("struct", (("colors", ("sequence", COLOR)), ("pick", SHAPE)))
    value = {"colors": ["RED", "RED", "BLUE"], "pick": ("label", "x")}
    assert roundtrip(tag, value) == value


def test_alignment_of_mixed_fields():
    encoder = CdrEncoder()
    encoder.write("octet", 1)
    encoder.write("ulong", 0x11223344)  # must align to offset 4
    data = encoder.getvalue()
    assert len(data) == 8
    assert data[1:4] == b"\x00\x00\x00"
    decoder = CdrDecoder(data)
    assert decoder.read("octet") == 1
    assert decoder.read("ulong") == 0x11223344


def test_alignment_of_double_after_short():
    encoder = CdrEncoder()
    encoder.write("short", 1)
    encoder.write("double", 2.0)
    data = encoder.getvalue()
    assert len(data) == 16
    decoder = CdrDecoder(data)
    decoder.read("short")
    assert decoder.read("double") == 2.0


def test_string_includes_nul_in_length():
    data = CdrEncoder().write("string", "ab").getvalue()
    assert data[:4] == (3).to_bytes(4, "little")
    assert data[4:7] == b"ab\x00"


def test_truncated_data_raises():
    data = CdrEncoder().write("ulong", 7).getvalue()
    with pytest.raises(MarshalError):
        CdrDecoder(data[:2]).read("ulong")


def test_truncated_string_raises():
    data = CdrEncoder().write("string", "hello").getvalue()
    with pytest.raises(MarshalError):
        CdrDecoder(data[:-2]).read("string")


def test_string_without_nul_raises():
    encoder = CdrEncoder()
    encoder.write("ulong", 2)
    data = encoder.getvalue() + b"ab"
    with pytest.raises(MarshalError):
        CdrDecoder(data).read("string")


def test_absurd_sequence_length_raises():
    data = CdrEncoder().write("ulong", 2**31).getvalue()
    with pytest.raises(MarshalError):
        CdrDecoder(data).read(("sequence", "octet"))


def test_unknown_tag_raises():
    with pytest.raises(MarshalError):
        CdrEncoder().write("wchar", "x")
    with pytest.raises(MarshalError):
        CdrDecoder(b"\x00\x00\x00\x00").read(("map", "x"))


def test_type_mismatch_raises():
    with pytest.raises(MarshalError):
        CdrEncoder().write("string", 42)
    with pytest.raises(MarshalError):
        CdrEncoder().write("octets", "not bytes")
    with pytest.raises(MarshalError):
        CdrEncoder().write(("sequence", "long"), 42)
    with pytest.raises(MarshalError):
        CdrEncoder().write("ulong", -1)


def test_struct_missing_field_raises():
    tag = ("struct", (("a", "long"), ("b", "long")))
    with pytest.raises(MarshalError):
        CdrEncoder().write(tag, {"a": 1})


def test_decoder_position_tracking():
    data = CdrEncoder().write("ulong", 1).write("ulong", 2).getvalue()
    decoder = CdrDecoder(data)
    assert decoder.remaining() == 8
    decoder.read("ulong")
    assert decoder.position == 4
    assert not decoder.at_end()
    decoder.read("ulong")
    assert decoder.at_end()


# ----------------------------------------------------------------------
# alignment edge cases and fast-path/baseline equivalence
# ----------------------------------------------------------------------

from repro import perf  # noqa: E402  (grouped with the tests that use it)

PRIMITIVE_SAMPLES = {
    "boolean": True,
    "octet": 0xA5,
    "short": -31000,
    "ushort": 61000,
    "long": -2_000_000_000,
    "ulong": 4_000_000_000,
    "longlong": -(2**62),
    "ulonglong": 2**63,
    "float": 1.5,
    "double": -2.25,
}

SIZES = {
    "boolean": 1,
    "octet": 1,
    "short": 2,
    "ushort": 2,
    "long": 4,
    "ulong": 4,
    "longlong": 8,
    "ulonglong": 8,
    "float": 4,
    "double": 8,
}


@pytest.mark.parametrize("tag", sorted(PRIMITIVE_SAMPLES))
@pytest.mark.parametrize("offset", range(1, 8))
def test_primitive_alignment_at_every_odd_offset(tag, offset):
    """Each primitive pads to its natural alignment from any offset."""
    value = PRIMITIVE_SAMPLES[tag]
    size = SIZES[tag]
    encoder = CdrEncoder()
    for _ in range(offset):
        encoder.write("octet", 0xEE)
    encoder.write(tag, value)
    data = encoder.getvalue()
    aligned = offset + (-offset % size)
    assert len(data) == aligned + size
    assert data[offset:aligned] == b"\x00" * (aligned - offset)
    decoder = CdrDecoder(data)
    for _ in range(offset):
        assert decoder.read("octet") == 0xEE
    assert decoder.read(tag) == value
    assert decoder.at_end()


@pytest.mark.parametrize("offset", range(1, 8))
def test_empty_string_and_octets_at_odd_offsets(offset):
    encoder = CdrEncoder()
    for _ in range(offset):
        encoder.write("octet", 1)
    encoder.write("string", "")
    encoder.write("octets", b"")
    encoder.write("ulong", 7)
    data = encoder.getvalue()
    decoder = CdrDecoder(data)
    for _ in range(offset):
        decoder.read("octet")
    assert decoder.read("string") == ""
    assert decoder.read("octets") == b""
    assert decoder.read("ulong") == 7
    assert decoder.at_end()


def test_nested_struct_sequence_alignment():
    """Interior padding of composites survives a roundtrip from offset 1."""
    inner = ("struct", (("flag", "octet"), ("weight", "double")))
    tag = (
        "struct",
        (
            ("kind", "octet"),
            ("items", ("sequence", inner)),
            ("tail", "ushort"),
        ),
    )
    value = {
        "kind": 3,
        "items": [
            {"flag": 1, "weight": 0.5},
            {"flag": 0, "weight": -1.25},
            {"flag": 7, "weight": 1e9},
        ],
        "tail": 513,
    }
    encoder = CdrEncoder()
    encoder.write("octet", 0xFF)  # start the composite at offset 1
    encoder.write(tag, value)
    decoder = CdrDecoder(encoder.getvalue())
    assert decoder.read("octet") == 0xFF
    assert decoder.read(tag) == value
    assert decoder.at_end()


def _encode_mixed_stream():
    """One encoder fed every primitive (direct methods) at shifting offsets."""
    encoder = CdrEncoder()
    encoder.write_octet(1)
    for tag in sorted(PRIMITIVE_SAMPLES):
        getattr(encoder, "write_" + tag)(PRIMITIVE_SAMPLES[tag])
        encoder.write_octet(2)  # de-align before the next primitive
    encoder.write_string("odd-offset string")
    encoder.write_octets(b"\x00\x01\x02")
    encoder.write("string", "")
    return encoder.getvalue()


def _decode_mixed_stream(data):
    decoder = CdrDecoder(data)
    values = [decoder.read_octet()]
    for tag in sorted(PRIMITIVE_SAMPLES):
        values.append(getattr(decoder, "read_" + tag)())
        values.append(decoder.read_octet())
    values.append(decoder.read_string())
    values.append(decoder.read_octets())
    values.append(decoder.read("string"))
    assert decoder.at_end()
    return values


def test_fast_paths_byte_identical_to_baseline():
    """The precompiled method suite emits the bytes the generic one does."""
    with perf.mode(True):
        fast_bytes = _encode_mixed_stream()
        fast_values = _decode_mixed_stream(fast_bytes)
    with perf.mode(False):
        baseline_bytes = _encode_mixed_stream()
        baseline_values = _decode_mixed_stream(baseline_bytes)
    assert fast_bytes == baseline_bytes
    assert fast_values == baseline_values
    # cross-mode: bytes written by one suite decode under the other
    with perf.mode(False):
        assert _decode_mixed_stream(fast_bytes) == fast_values
    with perf.mode(True):
        assert _decode_mixed_stream(baseline_bytes) == baseline_values


def test_direct_methods_match_generic_write():
    for tag, value in PRIMITIVE_SAMPLES.items():
        direct = CdrEncoder()
        getattr(direct, "write_" + tag)(value)
        generic = CdrEncoder().write(tag, value)
        assert direct.getvalue() == generic.getvalue(), tag
        assert getattr(CdrDecoder(direct.getvalue()), "read_" + tag)() == (
            CdrDecoder(generic.getvalue()).read(tag)
        )
