"""Unit tests for the simulated processor and its CPU model."""

import pytest

from repro.sim.scheduler import Scheduler, SimulationError
from repro.sim.process import Processor


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def proc(sched):
    return Processor(0, sched)


def test_charge_serialises_cpu_work(proc):
    first = proc.charge(0.5)
    second = proc.charge(0.25)
    assert first == 0.5
    assert second == 0.75
    assert proc.cpu_busy()


def test_cpu_free_at_never_in_the_past(sched, proc):
    proc.charge(0.1)
    sched.at(5.0, lambda: None)
    sched.run()
    assert proc.cpu_free_at == 5.0
    assert not proc.cpu_busy()


def test_charge_rejects_negative_cost(proc):
    with pytest.raises(SimulationError):
        proc.charge(-0.1)


def test_charge_accounts_by_category(proc):
    proc.charge(0.2, "crypto.sign")
    proc.charge(0.3, "crypto.sign")
    proc.charge(0.1, "marshal")
    assert proc.cpu_accounting["crypto.sign"] == pytest.approx(0.5)
    assert proc.cpu_accounting["marshal"] == pytest.approx(0.1)


def test_execute_runs_callback_after_cost(sched, proc):
    times = []
    proc.execute(0.5, lambda: times.append(sched.now))
    proc.execute(0.5, lambda: times.append(sched.now))
    sched.run()
    assert times == [0.5, 1.0]


def test_execute_skipped_after_crash(sched, proc):
    seen = []
    proc.execute(1.0, seen.append, "ran")
    sched.at(0.5, proc.crash)
    sched.run()
    assert seen == []
    assert proc.crashed
    assert proc.crash_time == 0.5


def test_crash_is_idempotent(sched, proc):
    sched.at(1.0, proc.crash)
    sched.at(2.0, proc.crash)
    sched.run()
    assert proc.crash_time == 1.0


def test_handler_registration_and_dispatch(sched, proc):
    class FakeDatagram:
        dst_port = "ring"

    seen = []
    proc.register_handler("ring", seen.append)
    dgram = FakeDatagram()
    proc.deliver(dgram)
    assert seen == [dgram]


def test_duplicate_port_registration_rejected(proc):
    proc.register_handler("ring", lambda d: None)
    with pytest.raises(SimulationError):
        proc.register_handler("ring", lambda d: None)


def test_crashed_processor_drops_deliveries(proc):
    class FakeDatagram:
        dst_port = "ring"

    seen = []
    proc.register_handler("ring", seen.append)
    proc.crash()
    proc.deliver(FakeDatagram())
    assert seen == []


def test_unattached_processor_has_no_network(proc):
    with pytest.raises(SimulationError):
        _ = proc.network


def test_priority_lane_is_independent_of_app_backlog(proc):
    proc.charge(10.0)  # heavy application backlog
    done = proc.charge(0.5, priority=True)
    assert done == 0.5  # protocol work does not wait for app work


def test_priority_work_pushes_back_app_work(proc):
    proc.charge(1.0)  # app lane free at 1.0
    proc.charge(0.5, priority=True)  # steals CPU
    assert proc.cpu_free_at == 1.5


def test_priority_lane_serialises_protocol_work(proc):
    first = proc.charge(0.5, priority=True)
    second = proc.charge(0.25, priority=True)
    assert first == 0.5
    assert second == 0.75


def test_app_work_does_not_delay_protocol_lane(proc):
    proc.charge(0.5, priority=True)
    proc.charge(5.0)  # app work
    assert proc.prio_free_at == 0.5


def test_priority_execute_runs_at_priority_completion(sched, proc):
    times = []
    proc.charge(10.0)  # app backlog must not matter
    proc.execute(0.5, lambda: times.append(sched.now), priority=True)
    sched.run()
    assert times == [0.5]
