"""Unit tests for the token codec and its structural checks (Table 3)."""

import random

import pytest

from repro.crypto.md4 import md4_digest
from repro.crypto.rsa import generate_keypair
from repro.multicast.messages import decode_frame
from repro.multicast.token import Token


def make_token(**overrides):
    fields = dict(
        sender_id=2,
        ring_id=4,
        visit=17,
        seq=120,
        aru=100,
        successor=3,
        aru_id=1,
        rtr_list=[101, 103],
        rtg_list=[99],
        message_digest_list=[(119, b"d" * 16), (120, b"e" * 16)],
        prev_token_digest=b"p" * 16,
        signature=987654321,
    )
    fields.update(overrides)
    return Token(**fields)


def test_token_roundtrip():
    token = make_token()
    decoded = decode_frame(token.encode())
    assert isinstance(decoded, Token)
    for field in (
        "sender_id",
        "ring_id",
        "visit",
        "seq",
        "aru",
        "aru_id",
        "successor",
        "rtr_list",
        "rtg_list",
        "message_digest_list",
        "prev_token_digest",
        "signature",
    ):
        assert getattr(decoded, field) == getattr(token, field), field


def test_signable_bytes_exclude_signature():
    a = make_token(signature=1)
    b = make_token(signature=2)
    assert a.signable_bytes() == b.signable_bytes()


def test_signature_covers_all_fields():
    rng = random.Random(9)
    pair = generate_keypair(rng, 256)
    token = make_token(signature=0)
    token.signature = pair.sign(md4_digest(token.signable_bytes()))
    assert pair.public.verify(md4_digest(token.signable_bytes()), token.signature)
    mutant = make_token(seq=121, signature=token.signature)
    assert not pair.public.verify(md4_digest(mutant.signable_bytes()), mutant.signature)


def test_digest_for():
    token = make_token()
    assert token.digest_for(119) == b"d" * 16
    assert token.digest_for(42) is None


MEMBERS = (1, 2, 3, 5)


def test_well_formed_accepts_correct_token():
    token = make_token(sender_id=2, successor=3)
    assert token.well_formed(MEMBERS)


def test_well_formed_wraps_ring():
    token = make_token(sender_id=5, successor=1)
    assert token.well_formed(MEMBERS)


@pytest.mark.parametrize(
    "overrides",
    [
        {"sender_id": 99},  # sender not a member
        {"successor": 99},  # successor not a member
        {"sender_id": 2, "successor": 5},  # wrong successor (should be 3)
        {"aru": 200},  # aru > seq
        {"aru_id": 42},  # aru_id not a member nor the sentinel
        {"message_digest_list": [(120, b"x"), (119, b"y")]},  # unsorted digests
        {"message_digest_list": [(500, b"x")]},  # digest beyond seq
    ],
)
def test_well_formed_rejects(overrides):
    token = make_token(**overrides)
    assert not token.well_formed(MEMBERS)


def test_well_formed_accepts_no_aru_id_sentinel():
    token = make_token(aru_id=Token.NO_ARU_ID)
    assert token.well_formed(MEMBERS)


def test_signable_bytes_match_generic_sequence_tags():
    """The direct-method encoding equals the generic-tag encoding it
    replaced (the byte-identity `Token.signable_bytes` promises)."""
    from repro.orb.cdr import CdrEncoder

    token = make_token()
    generic = CdrEncoder()
    generic.write("ulong", token.sender_id)
    generic.write("ulong", token.ring_id)
    generic.write("ulonglong", token.visit)
    generic.write("ulonglong", token.seq)
    generic.write("ulonglong", token.aru)
    generic.write("ulong", token.aru_id)
    generic.write("ulong", token.successor)
    generic.write(("sequence", "ulonglong"), token.rtr_list)
    generic.write(("sequence", "ulonglong"), token.rtg_list)
    digest_struct = ("struct", (("seq", "ulonglong"), ("digest", "octets")))
    generic.write(
        ("sequence", digest_struct),
        [{"seq": s, "digest": d} for s, d in token.message_digest_list],
    )
    generic.write("octets", token.prev_token_digest)
    assert token.signable_bytes() == generic.getvalue()
