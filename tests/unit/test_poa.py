"""Unit tests for the object adapter."""

import pytest

from repro.orb.idl import IdlError, InterfaceDef, OperationDef
from repro.orb.poa import ObjectAdapter

PING_IDL = InterfaceDef("Ping", [OperationDef("ping", [], result="long")])


class PingServant:
    def ping(self):
        return 1


def test_activate_and_lookup():
    adapter = ObjectAdapter()
    key = adapter.activate("obj/1", PingServant(), PING_IDL)
    assert key == b"obj/1"
    skeleton = adapter.skeleton(b"obj/1")
    assert skeleton is not None
    assert skeleton.interface is PING_IDL


def test_string_and_bytes_keys_are_equivalent():
    adapter = ObjectAdapter()
    adapter.activate("obj/1", PingServant(), PING_IDL)
    assert adapter.skeleton(b"obj/1") is not None


def test_duplicate_activation_rejected():
    adapter = ObjectAdapter()
    adapter.activate("obj/1", PingServant(), PING_IDL)
    with pytest.raises(IdlError):
        adapter.activate(b"obj/1", PingServant(), PING_IDL)


def test_deactivate_removes_servant():
    adapter = ObjectAdapter()
    adapter.activate("obj/1", PingServant(), PING_IDL)
    adapter.deactivate("obj/1")
    assert adapter.skeleton(b"obj/1") is None
    adapter.deactivate("obj/1")  # idempotent


def test_unknown_key_returns_none():
    adapter = ObjectAdapter()
    assert adapter.skeleton(b"nope") is None


def test_active_keys_sorted():
    adapter = ObjectAdapter()
    adapter.activate("b", PingServant(), PING_IDL)
    adapter.activate("a", PingServant(), PING_IDL)
    assert adapter.active_keys() == [b"a", b"b"]
    assert len(adapter) == 2


def test_reactivation_after_deactivate():
    adapter = ObjectAdapter()
    adapter.activate("obj/1", PingServant(), PING_IDL)
    adapter.deactivate("obj/1")
    adapter.activate("obj/1", PingServant(), PING_IDL)
    assert adapter.skeleton(b"obj/1") is not None
