"""Unit and end-to-end tests for IDL user exceptions."""

import pytest

from repro.orb.core import BatchingPolicy, Orb
from repro.orb.giop import GiopError
from repro.orb.idl import (
    IdlError,
    InterfaceDef,
    OperationDef,
    ParamDef,
    UserException,
    peek_exception_id,
)
from repro.orb.transport import DirectTransport
from repro.sim.network import Network, NetworkParams
from repro.sim.process import Processor
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler


class InsufficientFunds(UserException):
    repository_id = "IDL:repro/InsufficientFunds:1.0"
    members = (("requested", "long"), ("available", "long"))


class AccountFrozen(UserException):
    repository_id = "IDL:repro/AccountFrozen:1.0"
    members = (("reason", "string"),)


class Undeclared(UserException):
    repository_id = "IDL:repro/Undeclared:1.0"


ATM_IDL = InterfaceDef(
    "Atm",
    [
        OperationDef(
            "withdraw",
            [ParamDef("amount", "long")],
            result="long",
            raises=(InsufficientFunds, AccountFrozen),
        ),
    ],
)


class AtmServant:
    def __init__(self, balance=100, frozen=False, misbehave=False):
        self.balance = balance
        self.frozen = frozen
        self.misbehave = misbehave

    def withdraw(self, amount):
        if self.misbehave:
            raise Undeclared()
        if self.frozen:
            raise AccountFrozen(reason="court order")
        if amount > self.balance:
            raise InsufficientFunds(requested=amount, available=self.balance)
        self.balance -= amount
        return self.balance


# ----------------------------------------------------------------------
# pure codec behaviour
# ----------------------------------------------------------------------

def test_exception_marshal_roundtrip():
    exc = InsufficientFunds(requested=50, available=10)
    clone = InsufficientFunds.unmarshal(exc.marshal())
    assert clone == exc
    assert clone.values == {"requested": 50, "available": 10}


def test_peek_exception_id():
    body = AccountFrozen(reason="x").marshal()
    assert peek_exception_id(body) == AccountFrozen.repository_id


def test_wrong_exception_class_rejected():
    body = AccountFrozen(reason="x").marshal()
    with pytest.raises(IdlError):
        InsufficientFunds.unmarshal(body)


def test_missing_member_rejected():
    with pytest.raises(IdlError):
        InsufficientFunds(requested=5)


def test_unknown_member_rejected():
    with pytest.raises(IdlError):
        AccountFrozen(reason="x", extra=1)


def test_oneway_cannot_declare_raises():
    with pytest.raises(IdlError):
        OperationDef("fire", oneway=True, raises=(AccountFrozen,))


def test_operation_resolves_declared_exceptions():
    op = ATM_IDL.operation("withdraw")
    assert op.exception_for(InsufficientFunds.repository_id) is InsufficientFunds
    assert op.exception_for("IDL:nonsense:1.0") is None


# ----------------------------------------------------------------------
# end to end over the direct transport
# ----------------------------------------------------------------------

def atm_world(servant):
    sched = Scheduler()
    net = Network(sched, params=NetworkParams(jitter=0.0), rng=RngStreams(1).stream("n"))
    orbs = []
    for pid in range(2):
        proc = Processor(pid, sched)
        net.add_processor(proc)
        orb = Orb(proc, sched, batching=BatchingPolicy.disabled())
        orb.set_transport(DirectTransport(net))
        orbs.append(orb)
    ref = orbs[1].register_servant("atm", servant, ATM_IDL)
    stub = orbs[0].stub(ATM_IDL, ref)
    return sched, stub


def test_declared_exception_reaches_client():
    sched, stub = atm_world(AtmServant(balance=10))
    outcomes = []
    stub.withdraw(50, reply_to=outcomes.append, on_exception=outcomes.append)
    sched.run()
    (outcome,) = outcomes
    assert isinstance(outcome, InsufficientFunds)
    assert outcome.values == {"requested": 50, "available": 10}


def test_alternative_declared_exception():
    sched, stub = atm_world(AtmServant(frozen=True))
    outcomes = []
    stub.withdraw(1, reply_to=outcomes.append, on_exception=outcomes.append)
    sched.run()
    (outcome,) = outcomes
    assert isinstance(outcome, AccountFrozen)
    assert outcome.values == {"reason": "court order"}


def test_successful_call_bypasses_exception_path():
    sched, stub = atm_world(AtmServant(balance=100))
    results = []
    errors = []
    stub.withdraw(30, reply_to=results.append, on_exception=errors.append)
    sched.run()
    assert results == [70]
    assert errors == []


def test_undeclared_exception_becomes_system_exception():
    sched, stub = atm_world(AtmServant(misbehave=True))
    outcomes = []
    stub.withdraw(1, reply_to=outcomes.append, on_exception=outcomes.append)
    sched.run()
    (outcome,) = outcomes
    assert isinstance(outcome, GiopError)


def test_exception_without_handler_raises():
    sched, stub = atm_world(AtmServant(balance=0))
    stub.withdraw(5, reply_to=lambda _: None)
    with pytest.raises(InsufficientFunds):
        sched.run()
