"""Unit tests for deterministic RNG substreams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_stream_is_reproducible():
    a = RngStreams(42).stream("net.loss")
    b = RngStreams(42).stream("net.loss")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_independent_streams():
    streams = RngStreams(42)
    a = streams.stream("alpha")
    b = streams.stream("beta")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RngStreams(1).stream("x")
    b = RngStreams(2).stream("x")
    assert a.random() != b.random()


def test_stream_is_cached():
    streams = RngStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_spawn_creates_namespaced_children():
    parent = RngStreams(42)
    child_a = parent.spawn("p0")
    child_b = parent.spawn("p1")
    assert child_a.stream("x").random() != child_b.stream("x").random()
    # Child streams are themselves reproducible.
    again = RngStreams(42).spawn("p0")
    assert RngStreams(42).spawn("p0").stream("x").random() == again.stream("x").random()
