"""End-to-end observability: metrics, spans, trace cross-checks."""

from repro.bench.latency import ECHO_IDL, EchoServant
from repro.core.config import ImmuneConfig, SurvivabilityCase
from repro.core.immune import ImmuneSystem
from repro.obs import Observability
from repro.obs.export import render_dashboard, summarize


def observed_run(seed=3, operations=5):
    """A small fully-survivable run with metrics AND full tracing on."""
    obs = Observability()
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=seed)
    immune = ImmuneSystem(num_processors=6, config=config, obs=obs)
    server = immune.deploy("echo", ECHO_IDL, lambda pid: EchoServant(), [0, 1, 2])
    client = immune.deploy_client("driver", [3, 4, 5])
    immune.start()
    stubs = immune.client_stubs(client, ECHO_IDL, server)
    replies = []
    for k in range(operations):

        def fire(k=k):
            for _pid, stub in stubs:
                stub.echo(k, reply_to=replies.append)

        immune.scheduler.at(0.1 + 0.05 * k, fire, label="test.workload")
    immune.run(until=1.5)
    return immune, obs, replies


def test_metrics_agree_with_trace_log():
    immune, obs, replies = observed_run()
    registry = obs.registry
    trace = immune.trace
    assert replies  # the workload actually completed

    # Ordered deliveries: counter vs trace history, per processor.
    for pid in immune.processors:
        assert registry.value("multicast.delivered", proc=pid) == len(
            trace.where("multicast.deliver", proc=pid)
        )

    # Token visits: every accept and every origination is one visit.
    for pid in immune.processors:
        visits = registry.value("multicast.token_visits", proc=pid)
        accepted = len(trace.where("token.accept", proc=pid))
        originated = len(trace.where("token.send", proc=pid))
        assert visits == accepted + originated

    # Invocations intercepted: counter vs rm.invoke records.
    for pid in immune.processors:
        assert registry.value("rm.invocations_sent", proc=pid) == len(
            trace.where("rm.invoke", proc=pid)
        )

    # Suspicions: per-observer totals vs detector.suspect records.
    for pid in immune.processors:
        raised = sum(
            m.value
            for m in registry.family("detector.suspicions")
            if dict(m.labels)["proc"] == pid
        )
        assert raised == len(trace.where("detector.suspect", observer=pid))


def test_votes_and_spans_close_out():
    immune, obs, replies = observed_run(operations=4)
    registry = obs.registry
    # 4 ops x (invocation vote at 3 servers + response vote at 3 clients).
    assert registry.total("vote.decisions") == 4 * 6
    assert registry.total("vote.mismatches") == 0
    # Every logical invocation's span reached reply_voted.
    assert len(obs.spans.closed_spans()) == 4
    assert obs.spans.open_spans() == []
    for span in obs.spans.closed_spans():
        stages = [stage for stage, _ in span.breakdown()]
        assert stages[0] == "intercepted"
        assert stages[-1] == "reply_voted"
    # The registry's span histograms agree with the tracker.
    assert registry.value("span.closed") == 4
    assert registry.histogram("span.end_to_end_seconds").count == 4


def test_cpu_and_crypto_accounting_published():
    immune, obs, _ = observed_run(operations=2)
    registry = obs.registry
    registry.collect()
    # Case 4 signs every token: measured crypto work must be present
    # and agree with the processors' own CPU accounting.
    assert registry.total("crypto.sign_ops") > 0
    sign_seconds = sum(
        m.value
        for m in registry.family("crypto.seconds")
        if dict(m.labels)["op"] == "sign"
    )
    accounted = sum(
        p.cpu_accounting.get("crypto.sign", 0.0)
        for p in immune.processors.values()
    )
    assert abs(sign_seconds - accounted) < 1e-9
    assert registry.value("scheduler.events_executed") == immune.scheduler.events_executed
    assert immune.scheduler.busiest_labels(3)


def test_summary_and_dashboard_render():
    immune, obs, _ = observed_run(operations=3)
    summary = summarize(obs, crypto_costs=immune.config.crypto_costs)
    stages = [row["stage"] for row in summary["stage_breakdown"]]
    assert "voted" in stages and "reply_voted" in stages
    assert summary["amortisation"]["tokens_signed"] > 0
    assert summary["amortisation"]["ratio"] is not None
    assert summary["votes"]["decisions"] == 3 * 6
    text = render_dashboard(summary, run_info={"seed": 3})
    assert "Figure 7" in text
    assert "amortisation" in text
    assert "seed=3" in text


def test_observed_runs_are_deterministic():
    _, obs_a, _ = observed_run(seed=5)
    _, obs_b, _ = observed_run(seed=5)
    obs_a.registry.collect()
    obs_b.registry.collect()
    assert obs_a.registry.snapshot() == obs_b.registry.snapshot()
    spans_a = [s.to_dict() for s in obs_a.spans.spans()]
    spans_b = [s.to_dict() for s in obs_b.spans.spans()]
    assert spans_a == spans_b


def test_uninstrumented_run_matches_instrumented():
    # Attaching observability must not perturb the simulation itself.
    immune_a, _, replies_a = observed_run(seed=7)
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=7)
    immune_b = ImmuneSystem(num_processors=6, config=config)
    server = immune_b.deploy("echo", ECHO_IDL, lambda pid: EchoServant(), [0, 1, 2])
    client = immune_b.deploy_client("driver", [3, 4, 5])
    immune_b.start()
    stubs = immune_b.client_stubs(client, ECHO_IDL, server)
    replies_b = []
    for k in range(5):

        def fire(k=k):
            for _pid, stub in stubs:
                stub.echo(k, reply_to=replies_b.append)

        immune_b.scheduler.at(0.1 + 0.05 * k, fire, label="test.workload")
    immune_b.run(until=1.5)
    assert replies_a == replies_b
    assert immune_a.scheduler.events_executed == immune_b.scheduler.events_executed
