"""Integration tests for the elasticity subsystem.

Covers the three runtime-reshaping mechanisms end to end on live
simulated clusters:

* **live migration** — a replicated group moves between rings with
  invocations in flight before, during, and after the hold window;
  zero loss, zero duplication, and the hold priced into the critical
  path under the ``migration`` cause;
* **churn** — a brand-new processor joins a live ring through the
  membership protocol (timeouts re-derived for the larger population)
  and is later retired by planned silence (membership excludes it, the
  derived timeouts stay at the larger values, and the forensic
  scorecard attributes the exclusion as a true positive);
* **autoscaling** — a telemetry-fed autoscaler splits a hot ring and
  merges it back under the ramp workload, with the bank-conservation
  identity checked at every migration epoch.
"""

import pytest

from repro.elastic import (
    AutoscalerPolicy,
    ElasticCluster,
    ElasticConfig,
    MigrationError,
)
from repro.multicast.config import MulticastConfig
from repro.obs import Observability, SeriesSampler
from repro.obs.critpath import attribute_spans
from repro.obs.forensics import ForensicsHub, merge_timeline, score
from repro.workloads.bank import BANK_IDL, BankServant
from repro.workloads.ramp import RampBank
from tests.support import MulticastWorld


def build_cluster(max_rings=2, seed=7):
    obs = Observability(forensics=ForensicsHub())
    config = ElasticConfig(
        initial_rings=1,
        max_rings=max_rings,
        procs_per_ring=6,
        replication_degree=3,
        gateway_degree=3,
        seed=seed,
    )
    return ElasticCluster(config=config, obs=obs), obs


# ----------------------------------------------------------------------
# live migration
# ----------------------------------------------------------------------


def test_live_migration_zero_loss_zero_dup_with_inflight_traffic():
    cluster, obs = build_cluster()
    server = cluster.deploy(
        "bank", BANK_IDL, lambda pid: BankServant(),
        servant_from_state=BankServant.from_state,
    )
    client = cluster.deploy_client("driver")
    cluster.start()
    stubs = cluster.client_stubs(client, BANK_IDL, server)
    acct = {}
    for _pid, stub in stubs:
        stub.open_account("alice", 100, reply_to=lambda v: acct.setdefault("id", v))
    cluster.run(until=0.5)

    new_ring = cluster.add_ring()
    results = []

    def fire_deposits():
        for _pid, stub in stubs:
            stub.deposit(acct["id"], 7, reply_to=results.append)

    # before the hold, inside the hold window, and after cutover
    cluster.scheduler.at(1.05, fire_deposits, label="t.dep")
    cluster.scheduler.at(1.12, fire_deposits, label="t.dep")
    cluster.scheduler.at(1.40, fire_deposits, label="t.dep")
    done = []
    cluster.scheduler.at(
        1.10, lambda: cluster.migrate("bank", new_ring, done=done.append),
        label="t.mig",
    )
    cluster.run(until=3.0)

    assert done and done[0]["dst_ring"] == new_ring
    assert done[0]["held"] > 0  # the mid-window deposits were parked
    # one reply per client replica per round, every deposit applied once
    assert len(results) == 9 and all(value >= 0 for value in results)
    handle = cluster.group("bank")
    assert cluster.directory.home_ring("bank") == new_ring
    balances = {s.balance(acct["id"]) for s in handle.servants.values()}
    assert balances == {100 + 3 * 7}

    # the parked invocations marked the migration_held stage (one span
    # per logical operation; ``held`` counts frames per replica) and
    # the hold is attributed to the migration critical-path cause
    held_spans = [
        span for span in obs.spans.spans() if "migration_held" in span.marks
    ]
    assert held_spans and all(span.key[0] == "driver" for span in held_spans)
    report = attribute_spans(obs.spans, merge_timeline(obs.forensics))
    migration_seconds = sum(
        row["seconds"] for row in report["per_cause"]
        if row["cause"] == "migration"
    )
    assert migration_seconds > 0.0


def test_migration_round_trip_returns_home():
    cluster, _obs = build_cluster()
    server = cluster.deploy(
        "bank", BANK_IDL, lambda pid: BankServant(),
        servant_from_state=BankServant.from_state,
    )
    client = cluster.deploy_client("driver")
    cluster.start()
    stubs = cluster.client_stubs(client, BANK_IDL, server)
    acct = {}
    for _pid, stub in stubs:
        stub.open_account("alice", 50, reply_to=lambda v: acct.setdefault("id", v))
    cluster.run(until=0.5)
    new_ring = cluster.add_ring()
    records = []
    cluster.migrate("bank", new_ring, done=records.append)
    cluster.run(until=1.5)
    cluster.migrate("bank", 0, done=records.append)
    cluster.run(until=2.5)
    assert [r["dst_ring"] for r in records] == [new_ring, 0]
    assert cluster.directory.home_ring("bank") == 0
    results = []
    for _pid, stub in stubs:
        stub.deposit(acct["id"], 5, reply_to=results.append)
    cluster.run(until=3.0)
    assert results and all(value == 55 for value in results)


def test_migration_rejects_client_and_stateless_groups():
    cluster, _obs = build_cluster()
    cluster.deploy("plain", BANK_IDL, lambda pid: BankServant())
    cluster.deploy_client("driver")
    cluster.add_ring()
    with pytest.raises(MigrationError, match="client group"):
        cluster.migrate("driver", 1)
    with pytest.raises(MigrationError, match="servant_from_state"):
        cluster.migrate("plain", 1)
    with pytest.raises(MigrationError, match="never bound"):
        cluster.migrate("ghost", 1)


# ----------------------------------------------------------------------
# churn
# ----------------------------------------------------------------------


def test_churn_join_rederives_timeouts_and_retire_keeps_them():
    cluster, obs = build_cluster()
    server = cluster.deploy(
        "bank", BANK_IDL, lambda pid: BankServant(),
        servant_from_state=BankServant.from_state,
    )
    client = cluster.deploy_client("driver")
    cluster.start()
    stubs = cluster.client_stubs(client, BANK_IDL, server)
    acct = {}
    for _pid, stub in stubs:
        stub.open_account("alice", 100, reply_to=lambda v: acct.setdefault("id", v))
    cluster.run(until=0.5)

    ring0 = cluster.rings[0]
    anchor = cluster.config.ring_pids(0)[0]
    endpoint = ring0.endpoints[anchor]
    before = endpoint.config.token_rotation_timeout

    new_pid = cluster.grow_processor(0)
    cluster.run(until=1.5)
    assert new_pid in endpoint.members
    grown = endpoint.config.token_rotation_timeout
    assert grown > before  # re-derived for the larger population
    # the joiner resynced the group table from a donor
    assert ring0.managers[new_pid].groups.members("bank")

    # invocations keep working on the enlarged ring
    results = []
    for _pid, stub in stubs:
        stub.deposit(acct["id"], 5, reply_to=results.append)
    cluster.run(until=2.0)
    assert results and all(value == 105 for value in results)

    # planned retirement: silence, exclusion, no timeout tightening
    cluster.retire_processor(new_pid)
    cluster.run(until=4.0)
    assert new_pid not in endpoint.members
    # the shrink re-derives for the smaller population, but derivation
    # is growth-only: a live ring never tightens its timeouts
    assert endpoint.config.token_rotation_timeout == grown
    card = score(obs.forensics)
    assert card["precision"] == 1.0 and card["recall"] == 1.0

    results2 = []
    for _pid, stub in stubs:
        stub.deposit(acct["id"], 5, reply_to=results2.append)
    cluster.run(until=4.5)
    assert results2 and all(value == 110 for value in results2)


def test_membership_shrink_keeps_derived_timeouts():
    # The endpoint-level shrink path: every installation re-derives the
    # timeouts for the installed population, and re-derivation for a
    # *smaller* ring must keep the larger values (growth-only), so a
    # shrinking ring never tightens under a live protocol.
    world = MulticastWorld(num=4, seed=3).start()
    world.run(until=1.0)
    endpoint = world.endpoints[0]
    four = endpoint.config.token_rotation_timeout
    fresh_three = MulticastConfig(security=world.config.security)
    fresh_three.resolve_timeouts(world.crypto_costs, 3)
    assert four > fresh_three.token_rotation_timeout

    world.processors[3].crash()
    world.run(until=6.0)
    assert 3 not in endpoint.members
    assert len(endpoint.members) == 3
    # the exclusion installed a 3-member ring and re-derived: unchanged
    assert endpoint.config.token_rotation_timeout == four


# ----------------------------------------------------------------------
# autoscaling under the ramp workload
# ----------------------------------------------------------------------


def test_autoscaler_splits_and_merges_with_conservation_at_every_epoch():
    cluster, obs = build_cluster()
    ramp = RampBank(
        cluster, branches=4, streams=3, period=0.3, stream_stagger=0.5, start=0.3
    )
    sampler = SeriesSampler(
        obs.registry, period=0.1, families={"rm.delivered_to_orb"}
    )
    sampler.start(cluster.scheduler)
    policy = AutoscalerPolicy(
        decision_period=0.25,
        window=0.25,
        split_threshold=60.0,
        merge_threshold=5.0,
        cooldown=1.0,
    )
    cluster.enable_autoscaler(sampler, policy)

    audits = []
    cluster.coordinator.listeners.append(
        lambda record: audits.append(ramp.audit())
    )
    ramp.schedule(until=3.0)
    cluster.start()
    cluster.run(until=6.0)

    actions = [action for _at, action, _detail in cluster.autoscaler.decisions]
    assert "split" in actions and "merge" in actions
    assert len(cluster.coordinator.completed) >= 3
    assert sorted(cluster.active_rings) == [0]  # merged back after the ramp
    assert audits and all(audit["conserved"] for audit in audits)
    verdict = ramp.settled()
    assert verdict["ok"], verdict
