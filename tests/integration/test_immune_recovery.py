"""Integration tests: the Immune system across processor failures.

These exercise the whole stack's recovery story with *two-way*
invocations in flight: voting thresholds shrink when an excluded
processor's replicas are dropped, pending votes are re-evaluated, and
the service answers throughout.
"""

import pytest

from repro.core.config import ImmuneConfig, SurvivabilityCase
from repro.core.immune import ImmuneSystem
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef
from repro.sim.faults import FaultPlan

STORE_IDL = InterfaceDef(
    "Store",
    [
        OperationDef(
            "put",
            [ParamDef("key", "string"), ParamDef("value", "string")],
            result="boolean",
        ),
        OperationDef("get", [ParamDef("key", "string")], result="string"),
        OperationDef("count", [], result="long"),
    ],
)


class StoreServant:
    def __init__(self):
        self.data = {}

    def put(self, key, value):
        self.data[key] = value
        return True

    def get(self, key):
        return self.data.get(key, "")

    def count(self):
        return len(self.data)


def build(fault_plan=None, seed=23, num=6):
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=seed)
    immune = ImmuneSystem(num_processors=num, config=config, fault_plan=fault_plan)
    store = immune.deploy("store", STORE_IDL, lambda pid: StoreServant(), [0, 1, 2])
    client = immune.deploy_client("shopper", [3, 4, 5])
    immune.start()
    return immune, store, client


def test_server_crash_mid_stream_service_continues():
    plan = FaultPlan().schedule_crash(1, 1.0)
    immune, store, client = build(fault_plan=plan)
    stubs = immune.client_stubs(client, STORE_IDL, store)
    replies = {pid: [] for pid, _ in stubs}

    def put_all(key, value):
        for pid, stub in stubs:
            if not immune.processors[pid].crashed:
                stub.put(key, value, reply_to=replies[pid].append)

    immune.scheduler.at(0.3, put_all, "before", "crash")
    immune.scheduler.at(4.0, put_all, "after", "crash")
    immune.run(until=7.0)
    # Both puts answered at every client replica, before and after.
    for got in replies.values():
        assert got == [True, True]
    assert immune.group_members("store") == (0, 2)
    for pid in (0, 2):
        assert store.servants[pid].data == {"before": "crash", "after": "crash"}


def test_client_crash_mid_stream_votes_still_complete():
    # A client replica's processor dies: input voting must still reach
    # majority from the surviving client replicas.
    plan = FaultPlan().schedule_crash(4, 1.0)
    immune, store, client = build(fault_plan=plan)
    stubs = immune.client_stubs(client, STORE_IDL, store)
    replies = {pid: [] for pid, _ in stubs}

    def put_all(key):
        for pid, stub in stubs:
            if not immune.processors[pid].crashed:
                stub.put(key, "v", reply_to=replies[pid].append)

    immune.scheduler.at(0.3, put_all, "k1")
    immune.scheduler.at(4.0, put_all, "k2")
    immune.run(until=7.0)
    assert immune.group_members("shopper") == (3, 5)
    for pid in (3, 5):
        assert replies[pid] == [True, True]
    for pid in (0, 1, 2):
        assert store.servants[pid].count() == 2


def test_in_flight_vote_unblocks_when_degree_shrinks():
    # The client replica on P4 is silenced (send omission) *and* its
    # processor later crashes.  A 2-of-3 vote on an invocation issued
    # while it was only silent still completes; after the crash the
    # group degree drops to 2 and subsequent votes need 2-of-2.
    from repro.core.replica import SendOmissionTap

    plan = FaultPlan().schedule_crash(4, 2.0)
    immune, store, client = build(fault_plan=plan)
    SendOmissionTap(immune.managers[4], from_time=0.0)
    stubs = immune.client_stubs(client, STORE_IDL, store)
    replies = []

    def put_all(key):
        for pid, stub in stubs:
            if not immune.processors[pid].crashed:
                stub.put(key, "v", reply_to=replies.append)

    immune.scheduler.at(0.3, put_all, "while-silent")
    immune.scheduler.at(5.0, put_all, "after-crash")
    immune.run(until=8.0)
    for pid in (0, 1, 2):
        assert set(store.servants[pid].data) == {"while-silent", "after-crash"}


def test_reads_after_recovery_are_consistent():
    plan = FaultPlan().schedule_crash(2, 1.5)
    immune, store, client = build(fault_plan=plan)
    stubs = immune.client_stubs(client, STORE_IDL, store)
    got = {pid: [] for pid, _ in stubs}

    def seed_data():
        for pid, stub in stubs:
            stub.put("city", "santa barbara", reply_to=lambda _: None)

    def read_back():
        for pid, stub in stubs:
            if not immune.processors[pid].crashed:
                stub.get("city", reply_to=got[pid].append)

    immune.scheduler.at(0.3, seed_data)
    immune.scheduler.at(5.0, read_back)
    immune.run(until=8.0)
    for pid, values in got.items():
        assert values == ["santa barbara"], "client on P%d got %r" % (pid, values)
