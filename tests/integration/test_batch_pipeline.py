"""End-to-end tests of the batch-signature pipelined multicast.

The unit suites pin the mechanism down in isolation; these run the
whole Immune system — packet driver, rings, replication, voting,
forensics — with ``batch_signatures`` on and check the emergent
claims: the throughput win, survivable value-fault attribution inside
signed batches, large-payload fragmentation, and determinism.
"""

from repro import perf
from repro.bench.perf import BATCH_SMOKE, _run_batch_case
from repro.multicast.config import MulticastConfig, SecurityLevel
from repro.obs.forensics import build_report, merge_timeline, run_intrusion_drill
from tests.support import MulticastWorld


DURATION = BATCH_SMOKE["duration"]
WARMUP = BATCH_SMOKE["warmup"]


def test_batch_pipeline_beats_per_visit_signatures_3x():
    per_visit = _run_batch_case(False, DURATION, WARMUP)
    batched = _run_batch_case(True, DURATION, WARMUP)
    assert per_visit["throughput"] > 0
    ratio = batched["throughput"] / per_visit["throughput"]
    assert ratio >= 3.0, "batch pipeline ratio %.2fx below the 3x gate" % ratio
    # Same kind of totally-ordered work is still being done, just faster.
    assert batched["sent"] > 0 and batched["received"] > 0


def test_batch_case_is_deterministic_across_perf_modes():
    fingerprints = {}
    for optimized in (False, True):
        with perf.mode(optimized):
            fingerprints[optimized] = _run_batch_case(True, DURATION, WARMUP)
    assert fingerprints[False] == fingerprints[True]


def test_intrusion_drill_with_batched_signatures_keeps_perfect_score():
    """A Byzantine replica corrupting traffic *inside* a signed batch
    and a mutant-token holder are both still convicted — precision and
    recall stay 1.0 with one signature covering many visits."""
    immune, obs, scenario = run_intrusion_drill(batch=True)
    assert scenario["batch_signatures"] is True
    report = build_report(obs.forensics, scenario=scenario)
    card = report["scorecard"]
    assert card["precision"] == 1.0
    assert card["recall"] == 1.0
    assert card["false_positives"] == []
    outcomes = {f["fault_id"]: f["outcome"] for f in card["per_fault"]}
    assert all(outcome == "detected" for outcome in outcomes.values())
    assert len(outcomes) == 3
    survivors = set(scenario["surviving_members"])
    assert survivors.isdisjoint({2, 3, 4})
    # Certificates actually flowed: the timeline records batch crypto.
    timeline = merge_timeline(obs.forensics)
    assert any(e.etype == "batch_sign" for e in timeline)
    assert any(e.etype == "batch_verify" for e in timeline)


def test_large_payloads_fragment_and_survive_the_ring():
    config = MulticastConfig(
        security=SecurityLevel.SIGNATURES,
        batch_signatures=True,
        fragment_payload_bytes=256,
    )
    world = MulticastWorld(num=3, seed=11, config=config).start()
    world.run(until=0.5)  # let the ring form
    payload = bytes(range(256)) * 5  # 1280 B -> 5 fragments
    world.endpoints[0].multicast("workers", payload)
    world.endpoints[0].multicast("workers", b"small")
    world.run(until=4.0)
    for proc_id in world.endpoints:
        payloads = world.delivered_payloads(proc_id)
        assert payload in payloads  # reassembled, byte-exact
        assert b"small" in payloads
        # total order preserved: the big payload (sent first) precedes
        assert payloads.index(payload) < payloads.index(b"small")
