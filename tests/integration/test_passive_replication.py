"""Integration tests: warm-passive replication and its limits.

The point of this mode is the paper's section 5 argument: passive
replication handles crash faults cheaply, but a corrupted primary's
value faults reach the clients — only active replication with majority
voting masks them.
"""

import pytest

from repro.core.config import ConfigError, ImmuneConfig, SurvivabilityCase
from repro.core.immune import ImmuneSystem
from repro.core.replica import ValueFaultServant
from repro.orb.cdr import CdrDecoder, CdrEncoder
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef
from repro.sim.faults import FaultPlan

COUNTER_IDL = InterfaceDef(
    "Counter",
    [
        OperationDef("add", [ParamDef("amount", "long")], result="long"),
        OperationDef("bump", [ParamDef("amount", "long")], oneway=True),
    ],
)


class CounterServant:
    def __init__(self):
        self.value = 0
        self.executions = 0

    def add(self, amount):
        self.executions += 1
        self.value += amount
        return self.value

    def bump(self, amount):
        self.executions += 1
        self.value += amount

    def get_state(self):
        return CdrEncoder().write("longlong", self.value).getvalue()

    def set_state(self, state):
        self.value = CdrDecoder(state).read("longlong")


def build(servant_factory=None, fault_plan=None, seed=37):
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=seed)
    immune = ImmuneSystem(num_processors=6, config=config, fault_plan=fault_plan)
    factory = servant_factory or (lambda pid: CounterServant())
    server = immune.deploy_passive("counter", COUNTER_IDL, factory, [0, 1, 2])
    client = immune.deploy_client("teller", [3, 4, 5])
    immune.start()
    return immune, server, client


def test_primary_alone_executes_backups_stay_warm():
    immune, server, client = build()
    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    replies = {pid: [] for pid, _ in stubs}
    for pid, stub in stubs:
        stub.add(5, reply_to=replies[pid].append)
        stub.add(7, reply_to=replies[pid].append)
    immune.run(until=3.0)
    for got in replies.values():
        assert got == [5, 12]
    # Only the primary executed; the backups were checkpointed to the
    # same state without running the operations.
    assert server.servants[0].executions == 2
    assert server.servants[1].executions == 0
    assert server.servants[2].executions == 0
    assert [server.servants[pid].value for pid in (0, 1, 2)] == [12, 12, 12]


def test_oneway_operations_are_checkpointed_too():
    immune, server, client = build()
    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    for _, stub in stubs:
        stub.bump(3)
        stub.bump(4)
    immune.run(until=3.0)
    assert [server.servants[pid].value for pid in (0, 1, 2)] == [7, 7, 7]
    assert server.servants[1].executions == 0


def test_failover_promotes_next_backup_with_current_state():
    plan = FaultPlan().schedule_crash(0, 2.0)
    immune, server, client = build(fault_plan=plan)
    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    replies = {pid: [] for pid, _ in stubs}

    def invoke(amount):
        for pid, stub in stubs:
            if not immune.processors[pid].crashed:
                stub.add(amount, reply_to=replies[pid].append)

    immune.scheduler.at(0.3, invoke, 10)   # executed by P0
    immune.scheduler.at(5.0, invoke, 5)    # P0 dead: executed by P1
    immune.run(until=8.0)
    for got in replies.values():
        assert got == [10, 15]
    assert server.servants[1].executions == 1  # promoted backup ran it
    assert server.servants[1].value == 15
    assert server.servants[2].value == 15      # still warm behind the new primary
    assert immune.group_members("counter") == (1, 2)


def test_passive_cannot_mask_a_corrupt_primary():
    # The same value fault that active replication masks (see
    # test_voting_masks_server_value_fault) reaches the clients here.
    def factory(pid):
        servant = CounterServant()
        return ValueFaultServant(servant, corrupt_operations={"add"}) if pid == 0 else servant

    immune, server, client = build(servant_factory=factory, seed=38)
    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    replies = {pid: [] for pid, _ in stubs}
    for pid, stub in stubs:
        stub.add(5, reply_to=replies[pid].append)
    immune.run(until=3.0)
    for got in replies.values():
        assert got == [5 + 666], "passive replication delivered the corruption"


def test_client_timeout_and_retry_covers_the_failover_window():
    # Passive replication's known window: an operation in flight when
    # the primary dies is lost (no other replica executed it).  The
    # ORB-level invocation deadline lets clients detect and retry.
    from repro.orb.giop import InvocationTimeout

    plan = FaultPlan().schedule_crash(0, 0.299)  # die just as the op arrives
    immune, server, client = build(fault_plan=plan)
    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    outcomes = {pid: [] for pid, _ in stubs}

    def invoke(attempt):
        for pid, stub in stubs:
            if not immune.processors[pid].crashed:
                stub.add(
                    10,
                    reply_to=lambda v, pid=pid: outcomes[pid].append(v),
                    on_exception=lambda e, pid=pid: outcomes[pid].append(e),
                    timeout=3.0,
                )

    immune.scheduler.at(0.295, invoke, 1)
    immune.scheduler.at(6.0, invoke, 2)  # the application-level retry
    immune.run(until=10.0)
    for pid, got in outcomes.items():
        assert len(got) == 2, "client on P%d got %r" % (pid, got)
        assert isinstance(got[0], InvocationTimeout) or got[0] in (10, 20), got
        assert got[-1] in (10, 20)  # the retry succeeded
    # The promoted primary executed the retry.
    assert server.servants[1].executions >= 1


def test_passive_requires_replicated_case():
    config = ImmuneConfig(case=SurvivabilityCase.UNREPLICATED)
    immune = ImmuneSystem(num_processors=2, config=config)
    with pytest.raises(ConfigError):
        immune.deploy_passive("x", COUNTER_IDL, lambda pid: CounterServant(), [0])
