"""End-to-end tests: unmodified application objects over the full stack."""

import pytest

from repro.core.config import ImmuneConfig, SurvivabilityCase
from repro.core.immune import ImmuneSystem
from repro.core.replica import ValueFaultServant
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef

COUNTER_IDL = InterfaceDef(
    "Counter",
    [
        OperationDef("add", [ParamDef("amount", "long")], result="long"),
        OperationDef("record", [ParamDef("note", "string")], oneway=True),
    ],
)


class CounterServant:
    """A deterministic replicated counter."""

    def __init__(self):
        self.value = 0
        self.notes = []

    def add(self, amount):
        self.value += amount
        return self.value

    def record(self, note):
        self.notes.append(note)


def build(case, num=6, seed=3, **kwargs):
    config = ImmuneConfig(case=case, seed=seed)
    immune = ImmuneSystem(num_processors=num, config=config, **kwargs)
    server = immune.deploy("counter", COUNTER_IDL, lambda pid: CounterServant(), [0, 1, 2])
    client = immune.deploy_client("driver", [3, 4, 5])
    immune.start()
    return immune, server, client


@pytest.mark.parametrize(
    "case",
    [
        SurvivabilityCase.ACTIVE_REPLICATION,
        SurvivabilityCase.MAJORITY_VOTING,
        SurvivabilityCase.FULL_SURVIVABILITY,
    ],
)
def test_oneway_invocations_reach_every_server_replica_once(case):
    immune, server, client = build(case)
    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    for i in range(5):
        for _, stub in stubs:
            stub.record("note-%d" % i)
    immune.run(until=3.0)
    expected = ["note-%d" % i for i in range(5)]
    for pid, servant in server.servants.items():
        assert servant.notes == expected, "replica on P%d diverged" % pid


@pytest.mark.parametrize(
    "case",
    [
        SurvivabilityCase.ACTIVE_REPLICATION,
        SurvivabilityCase.MAJORITY_VOTING,
        SurvivabilityCase.FULL_SURVIVABILITY,
    ],
)
def test_twoway_invocation_returns_voted_result_to_every_client_replica(case):
    immune, server, client = build(case)
    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    results = {pid: [] for pid, _ in stubs}
    for pid, stub in stubs:
        stub.add(10, reply_to=results[pid].append)
    immune.run(until=3.0)
    # Each server replica processed the single (deduplicated) add once.
    for servant in server.servants.values():
        assert servant.value == 10
    # Every client replica received exactly one reply with the result.
    for pid, got in results.items():
        assert got == [10], "client replica on P%d got %r" % (pid, got)


def test_sequence_of_twoway_invocations_is_consistent():
    immune, server, client = build(SurvivabilityCase.FULL_SURVIVABILITY)
    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    results = {pid: [] for pid, _ in stubs}
    for i in range(4):
        for pid, stub in stubs:
            stub.add(1, reply_to=results[pid].append)
    immune.run(until=4.0)
    for servant in server.servants.values():
        assert servant.value == 4
    for got in results.values():
        assert got == [1, 2, 3, 4]


def test_unreplicated_baseline_case1():
    immune, server, client = build(SurvivabilityCase.UNREPLICATED)
    assert server.replica_procs == (0,)
    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    assert len(stubs) == 1
    results = []
    pid, stub = stubs[0]
    stub.add(5, reply_to=results.append)
    stub.record("hello")
    immune.run(until=1.0)
    assert results == [5]
    assert server.servants[0].notes == ["hello"]


def test_voting_masks_server_value_fault():
    immune = ImmuneSystem(
        num_processors=6,
        config=ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=5),
    )
    faulty = {}

    def factory(pid):
        servant = CounterServant()
        if pid == 2:
            wrapped = ValueFaultServant(servant)
            faulty[pid] = wrapped
            return wrapped
        return servant

    server = immune.deploy("counter", COUNTER_IDL, factory, [0, 1, 2])
    client = immune.deploy_client("driver", [3, 4, 5])
    immune.start()
    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    results = {pid: [] for pid, _ in stubs}
    for pid, stub in stubs:
        stub.add(7, reply_to=results[pid].append)
    immune.run(until=4.0)
    # The corrupt replica answered 7+666, but output voting masks it.
    assert faulty[2].corruptions >= 1
    for got in results.values():
        assert got == [7]


def test_server_value_fault_leads_to_processor_exclusion():
    immune = ImmuneSystem(
        num_processors=6,
        config=ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=5),
    )

    def factory(pid):
        servant = CounterServant()
        return ValueFaultServant(servant) if pid == 2 else servant

    server = immune.deploy("counter", COUNTER_IDL, factory, [0, 1, 2])
    client = immune.deploy_client("driver", [3, 4, 5])
    immune.start()
    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    for pid, stub in stubs:
        stub.add(7, reply_to=lambda _: None)
    immune.run(until=10.0)
    # The value fault detector attributed the fault to P2; the
    # membership protocol must have evicted it.
    members = immune.surviving_members()
    assert members, "system should still be operational"
    assert 2 not in members
    # All of P2's replicas are gone from every object group.
    assert immune.group_members("counter") == (0, 1)


def test_voting_disabled_in_case2_delivers_first_copy_only():
    immune, server, client = build(SurvivabilityCase.ACTIVE_REPLICATION)
    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    for _, stub in stubs:
        stub.record("once")
    immune.run(until=2.0)
    for servant in server.servants.values():
        assert servant.notes == ["once"]
    # Duplicate copies were suppressed, not delivered.
    for pid in server.replica_procs:
        dup = immune.managers[pid].dup_filter_for("counter")
        assert dup.stats["suppressed"] >= 1


def test_user_exceptions_are_voted_and_delivered_to_every_client_replica():
    from repro.orb.idl import UserException

    class TooBig(UserException):
        repository_id = "IDL:repro/TooBig:1.0"
        members = (("limit", "long"),)

    guarded_idl = InterfaceDef(
        "Guarded",
        [
            OperationDef(
                "add_small",
                [ParamDef("amount", "long")],
                result="long",
                raises=(TooBig,),
            )
        ],
    )

    class GuardedServant:
        def __init__(self):
            self.value = 0

        def add_small(self, amount):
            if amount > 10:
                raise TooBig(limit=10)
            self.value += amount
            return self.value

    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=8)
    immune = ImmuneSystem(num_processors=6, config=config)
    server = immune.deploy("guarded", guarded_idl, lambda pid: GuardedServant(), [0, 1, 2])
    client = immune.deploy_client("driver", [3, 4, 5])
    immune.start()
    stubs = immune.client_stubs(client, guarded_idl, server)
    outcomes = {pid: [] for pid, _ in stubs}
    for pid, stub in stubs:
        stub.add_small(
            99, reply_to=outcomes[pid].append, on_exception=outcomes[pid].append
        )
        stub.add_small(
            5, reply_to=outcomes[pid].append, on_exception=outcomes[pid].append
        )
    immune.run(until=3.0)
    for pid, got in outcomes.items():
        assert len(got) == 2, "client on P%d got %r" % (pid, got)
        assert isinstance(got[0], TooBig) and got[0].values == {"limit": 10}
        assert got[1] == 5
    # The rejected invocation must not have mutated any replica.
    for servant in server.servants.values():
        assert servant.value == 5


def test_client_replicas_see_consistent_interleaving_from_two_clients():
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=11)
    immune = ImmuneSystem(num_processors=6, config=config)
    server = immune.deploy("counter", COUNTER_IDL, lambda pid: CounterServant(), [0, 1])
    client_a = immune.deploy_client("alpha", [2, 3])
    client_b = immune.deploy_client("beta", [4, 5])
    immune.start()
    for _, stub in immune.client_stubs(client_a, COUNTER_IDL, server):
        stub.record("from-alpha")
    for _, stub in immune.client_stubs(client_b, COUNTER_IDL, server):
        stub.record("from-beta")
    immune.run(until=3.0)
    notes_sets = [tuple(s.notes) for s in server.servants.values()]
    assert notes_sets[0] == notes_sets[1]
    assert sorted(notes_sets[0]) == ["from-alpha", "from-beta"]
