"""End-to-end gate for the telemetry drill: ``repro.obs.report --slo``.

Asserts the acceptance story of the live-telemetry layer:

* the drill's SLO evaluation raises at least one burn-rate alert whose
  fire time precedes (or ties) the fault detector's attribution of the
  injected crash — the pager leads the post-mortem;
* the critical-path attribution decomposes span time into protocol
  causes and conserves the attributed seconds;
* the JSONL artefact (series, alerts, everything) is byte-identical
  across repeated runs and across perf modes;
* the ``repro.obs.watch`` replay renders frames from the artefact.
"""

import json

import pytest

from repro import perf
from repro.obs.report import evaluate_slo_run, run_instrumented
from repro.obs.export import export_jsonl
from repro.obs.watch import load_replay, main as watch_main, replay_frames

SEED = 11


@pytest.fixture(scope="module")
def drill():
    immune, obs, run_info = run_instrumented(seed=SEED, slo=True)
    slo_result, critpath, scorecard = evaluate_slo_run(immune, obs)
    return immune, obs, run_info, slo_result, critpath, scorecard


def export_drill(tmp_path, name="report.jsonl"):
    immune, obs, run_info = run_instrumented(seed=SEED, slo=True)
    slo_result, critpath, _scorecard = evaluate_slo_run(immune, obs)
    path = tmp_path / name
    export_jsonl(
        str(path), obs, run_info=run_info,
        crypto_costs=immune.config.crypto_costs,
        slo=slo_result, critpath=critpath,
    )
    return path.read_bytes()


def test_alert_leads_or_ties_the_detector(drill):
    _immune, _obs, run_info, slo_result, _critpath, _scorecard = drill
    rows = slo_result["scorecard"]
    assert rows, "no detectable fault joined against the alerts"
    crash = next(r for r in rows if r["fault_id"].startswith("crash:"))
    assert crash["injected_at"] == run_info["crash_at"]
    assert crash["verdict"] in ("led", "tied")
    assert crash["alert_fired_at"] <= crash["detected_at"]


def test_alerts_fire_only_after_the_injection(drill):
    _immune, _obs, run_info, slo_result, _critpath, _scorecard = drill
    assert slo_result["alerts"], "the crash drill must page"
    for alert in slo_result["alerts"]:
        assert alert["fired_at"] >= run_info["crash_at"]


def test_detection_latency_objective_judged(drill):
    _immune, _obs, _run_info, slo_result, _critpath, scorecard = drill
    entry = next(
        e for e in slo_result["slos"] if e["sli"] == "detection_latency"
    )
    assert entry["status"]["met"] is not None
    assert entry["status"]["recall"] == scorecard["recall"]


def test_critical_path_decomposition_conserves_time(drill):
    _immune, obs, _run_info, _slo_result, critpath, _scorecard = drill
    assert critpath["spans"] == len(obs.spans.closed_spans())
    assert critpath["total_seconds"] > 0.0
    assert sum(r["share"] for r in critpath["per_cause"]) == pytest.approx(1.0)
    causes = {r["cause"] for r in critpath["per_cause"]}
    # The crash stalls the ring: the story must be visible in the causes.
    assert "token_wait" in causes or "retransmission" in causes
    by_stage = sum(r["seconds"] for r in critpath["per_stage"])
    assert by_stage == pytest.approx(critpath["total_seconds"])


def test_series_and_alert_json_byte_identical_across_runs(tmp_path):
    first = export_drill(tmp_path, "first.jsonl")
    second = export_drill(tmp_path, "second.jsonl")
    assert first == second


def test_export_byte_identical_across_perf_modes(tmp_path):
    with perf.mode(True):
        optimized = export_drill(tmp_path, "optimized.jsonl")
    with perf.mode(False):
        baseline = export_drill(tmp_path, "baseline.jsonl")
    assert optimized == baseline


def test_watch_replay_renders_frames(tmp_path):
    path = tmp_path / "report.jsonl"
    path.write_bytes(export_drill(tmp_path))
    sampler, alerts, run_info = load_replay(str(path))
    assert alerts and run_info["slo_drill"]
    frames = list(replay_frames(sampler, alerts, run_info=run_info, frames=6))
    assert len(frames) == 6
    final_time, final_frame = frames[-1]
    assert final_time == sampler.times[-1]
    # The last frame shows the whole story: curves and the alert board.
    assert "span.opened (backlog)" in final_frame
    assert "invocation-availability" in final_frame
    # Replay is deterministic frame-for-frame.
    again = list(replay_frames(sampler, alerts, run_info=run_info, frames=6))
    assert frames == again


def test_watch_cli_plain_mode(tmp_path, capsys):
    path = tmp_path / "report.jsonl"
    path.write_bytes(export_drill(tmp_path))
    assert watch_main(["--replay", str(path), "--plain", "--frames", "3"]) == 0
    out = capsys.readouterr().out
    assert out.count("Immune system telemetry replay") == 3
    assert "replayed 3 frame(s)" in out


def test_watch_cli_rejects_artefact_without_series(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text(json.dumps({"record": "run", "seed": 1}) + "\n")
    assert watch_main(["--replay", str(path), "--plain"]) == 2
    assert "no series records" in capsys.readouterr().err


def test_watch_cli_rejects_series_without_sample_points(tmp_path, capsys):
    # Series records exist but carry zero points: replaying would show
    # nothing and previously exited 0 after "replayed 0 frame(s)".
    path = tmp_path / "pointless.jsonl"
    records = [
        {"record": "run", "seed": 1},
        {"record": "series", "period": 0.05, "name": "span.opened",
         "kind": "gauge", "labels": {}, "dropped": 0, "points": []},
        {"record": "summary"},
    ]
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    assert watch_main(["--replay", str(path), "--plain"]) == 2
    assert "no sample points" in capsys.readouterr().err


def test_report_cli_rejects_summary_only_artefact(tmp_path, capsys):
    from repro.obs.report import main as report_main

    path = tmp_path / "hollow.jsonl"
    records = [{"record": "run", "seed": 1}, {"record": "summary"}]
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    assert report_main(["--input", str(path)]) == 2
    assert "no series or span records" in capsys.readouterr().err
