"""Integration tests: processor (re)join — full eventual inclusion.

Table 4's Eventual Inclusion says correct processors eventually appear
in the installed membership.  For processors that were excluded during
a transient outage and later repaired, that requires a join protocol:
signed join requests, admission through a reconfiguration round with
the ``joining`` flag (empty coverage ignored by the delivery cut), and
refusal of convicted Byzantine processors.
"""

import pytest

from repro.bench.properties import delivery_violations
from repro.multicast.adversary import MutantTokenBehaviour
from repro.sim.faults import FaultPlan, LinkFaults
from tests.support import MulticastWorld


def isolate(plan, pid, others, start, end):
    """Sever all links to and from ``pid`` during [start, end)."""
    for other in others:
        if other != pid:
            plan.set_link(pid, other, LinkFaults(loss_prob=1.0))
            plan.set_link(other, pid, LinkFaults(loss_prob=1.0))
    plan.active_from = start
    plan.active_until = end
    return plan


def run_outage_and_rejoin(seed, rejoin_at=8.0, until=20.0):
    plan = isolate(FaultPlan(), 3, range(4), start=0.3, end=4.0)
    world = MulticastWorld(num=4, fault_plan=plan, seed=seed).start()
    world.scheduler.at(0.1, world.endpoints[0].multicast, "g", b"pre-outage")
    world.scheduler.at(rejoin_at, world.endpoints[3].request_join)
    world.scheduler.at(until - 4.0, world.endpoints[0].multicast, "g", b"post-join")
    world.run(until=until)
    return world


def test_isolated_processor_is_excluded_then_rejoins():
    world = run_outage_and_rejoin(seed=71)
    # During the outage P3 was excluded...
    excluded_at_some_point = any(
        3 in rec.excluded
        for rec in world.trace.of_kind("membership.install")
        if rec.get("excluded")
    )
    assert excluded_at_some_point, "the isolated processor should have been excluded"
    # ...and after rejoining, everyone (including P3) is back together.
    for pid in range(4):
        assert world.endpoints[pid].members == (0, 1, 2, 3), (
            "P%d members=%s" % (pid, world.endpoints[pid].members)
        )
    # Messages sent after the rejoin reach P3 too.
    assert b"post-join" in world.delivered_payloads(3)
    assert delivery_violations(world.trace, {0, 1, 2}) == []


def test_rejoined_processor_participates_in_ordering():
    world = run_outage_and_rejoin(seed=72, until=22.0)
    world.scheduler.at(22.5, world.endpoints[3].multicast, "g", b"from-rejoined")
    world.run(until=26.0)
    for pid in range(4):
        assert b"from-rejoined" in world.delivered_payloads(pid), (
            "P%d missing the rejoined member's message" % pid
        )


def test_convicted_byzantine_processor_cannot_rejoin():
    world = MulticastWorld(num=4, seed=73).start()
    behaviour = MutantTokenBehaviour(at_time=0.5).compromise(world.endpoints[2])
    world.run(until=6.0)
    behaviour.restore()
    correct = {0, 1, 3}
    for pid in correct:
        assert 2 not in world.endpoints[pid].members
    # The convicted equivocator asks back in; it must be refused.
    world.scheduler.at(7.0, world.endpoints[2].request_join)
    world.run(until=16.0)
    for pid in correct:
        assert 2 not in world.endpoints[pid].members, (
            "a convicted equivocator was readmitted by P%d" % pid
        )
    refusals = world.trace.of_kind("membership.join_refused")
    assert refusals, "members should have recorded the refusal"


def test_crash_restart_rejoin():
    # A processor that fail-stops cannot literally restart in this
    # simulator, so model repair as: exclusion via silence (isolated),
    # then rejoin — the membership-level behaviour is identical.
    world = run_outage_and_rejoin(seed=74)
    installs = [
        (rec.proc, rec.ring, tuple(rec.members))
        for rec in world.trace.of_kind("membership.install")
        if rec.proc in (0, 1, 2)
    ]
    # Histories are prefix-consistent across the veterans.
    by_proc = {}
    for proc, ring, members in installs:
        by_proc.setdefault(proc, []).append((ring, members))
    reference = by_proc[0]
    for proc, history in by_proc.items():
        shared = min(len(history), len(reference))
        assert history[:shared] == reference[:shared]
    # And the final membership everywhere includes the rejoined P3.
    for pid in range(4):
        assert world.endpoints[pid].members == (0, 1, 2, 3)
