"""Integration tests: a survivable Naming Service over the Immune stack.

Bootstrap through a replicated name service — the canonical CORBA
pattern — with every bind and resolve actively replicated and voted,
surviving a corrupt naming replica.
"""

import pytest

from repro.core.config import ImmuneConfig, SurvivabilityCase
from repro.core.immune import ImmuneSystem
from repro.core.replica import ValueFaultServant
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef
from repro.workloads.naming import (
    NamingClient,
    NamingServant,
    NAMING_IDL,
    NotFound,
)

GREETER_IDL = InterfaceDef(
    "Greeter", [OperationDef("greet", [ParamDef("who", "string")], result="string")]
)


class GreeterServant:
    def greet(self, who):
        return "hello, %s" % who


def build(naming_factory=None, seed=47):
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=seed)
    immune = ImmuneSystem(num_processors=6, config=config)
    factory = naming_factory or (lambda pid: NamingServant())
    naming = immune.deploy("naming", NAMING_IDL, factory, [0, 1, 2])
    greeter = immune.deploy("greeter", GREETER_IDL, lambda pid: GreeterServant(), [3, 4, 5])
    client = immune.deploy_client("app", [0, 4, 5])
    immune.start()
    return immune, naming, greeter, client


def test_bind_resolve_invoke_through_the_name_service():
    immune, naming, greeter, client = build()
    ns = NamingClient(immune, client, naming)
    greetings = []

    def on_resolved(pid, stub):
        stub.greet("immune", reply_to=greetings.append)

    immune.scheduler.at(0.2, ns.bind, "services/greeter", greeter)
    immune.scheduler.at(
        1.5, ns.resolve_stub, "services/greeter", GREETER_IDL, on_resolved
    )
    immune.run(until=4.0)
    # Every client replica resolved and invoked; all voted replies equal.
    assert greetings == ["hello, immune"] * 3


def test_resolve_miss_raises_voted_notfound():
    immune, naming, greeter, client = build()
    errors = []
    stubs = immune.client_stubs(client, NAMING_IDL, naming)
    for pid, stub in stubs:
        stub.resolve(
            "services/unknown",
            reply_to=lambda _t: pytest.fail("should not resolve"),
            on_exception=errors.append,
        )
    immune.run(until=3.0)
    assert len(errors) == 3
    assert all(isinstance(e, NotFound) for e in errors)
    assert all(e.values["rest_of_name"] == "services/unknown" for e in errors)


def test_corrupt_naming_replica_cannot_redirect_lookups():
    # The attack the Immune system exists to stop: a corrupted name
    # service replica answering lookups with a wrong (attacker-chosen)
    # reference.  Voting discards its answer.
    def factory(pid):
        servant = NamingServant()
        if pid == 2:
            return ValueFaultServant(servant, corrupt_operations={"resolve"})
        return servant

    immune, naming, greeter, client = build(naming_factory=factory, seed=48)
    ns = NamingClient(immune, client, naming)
    greetings = []

    def on_resolved(pid, stub):
        stub.greet("world", reply_to=greetings.append)

    immune.scheduler.at(0.2, ns.bind, "services/greeter", greeter)
    immune.scheduler.at(
        1.5, ns.resolve_stub, "services/greeter", GREETER_IDL, on_resolved
    )
    immune.run(until=8.0)
    assert greetings == ["hello, world"] * 3
    # And the corrupt naming replica's processor was evicted.
    assert 2 not in immune.surviving_members()


def test_name_listing_is_consistent():
    immune, naming, greeter, client = build()
    ns = NamingClient(immune, client, naming)
    listings = []
    immune.scheduler.at(0.2, ns.bind, "services/greeter", greeter)
    immune.scheduler.at(0.3, ns.bind, "services/naming", naming)

    def query():
        for pid, stub in immune.client_stubs(client, NAMING_IDL, naming):
            stub.list_names("services/", reply_to=listings.append)

    immune.scheduler.at(1.5, query)
    immune.run(until=4.0)
    assert listings == [["services/greeter", "services/naming"]] * 3
