"""Integration tests targeting the membership protocol's corner cases."""

import pytest

from repro.bench.properties import membership_violations
from repro.multicast.config import SecurityLevel
from repro.sim.faults import FaultPlan, LinkFaults
from tests.support import MulticastWorld


def test_straggler_catches_up_via_commit_bundle():
    # Drop everything sent TO P3 during the reconfiguration window, so
    # it misses the proposal round entirely and must adopt the commit
    # bundle replayed by the installed members.
    plan = FaultPlan(active_from=0.4, active_until=1.2)
    for src in range(4):
        if src != 3:
            plan.set_link(src, 3, LinkFaults(loss_prob=1.0))
    plan.schedule_crash(2, 0.5)
    world = MulticastWorld(num=4, fault_plan=plan, seed=61).start()
    world.scheduler.at(0.1, world.endpoints[0].multicast, "g", b"m0")
    world.run(until=10.0)
    correct = {0, 1, 3}
    for pid in correct:
        assert world.endpoints[pid].members == (0, 1, 3), (
            "P%d members=%s" % (pid, world.endpoints[pid].members)
        )
    assert membership_violations(world.trace, correct, faulty={2}) == []
    # Everyone — including the straggler — delivered the message.
    for pid in correct:
        assert world.delivered_payloads(pid) == [b"m0"]


def test_install_assigns_same_ring_id_everywhere():
    plan = FaultPlan().schedule_crash(1, 0.6)
    world = MulticastWorld(num=5, fault_plan=plan, seed=62).start()
    world.run(until=6.0)
    rings = {pid: world.endpoints[pid].ring_id for pid in (0, 2, 3, 4)}
    assert len(set(rings.values())) == 1, rings
    histories = {
        pid: world.endpoints[pid].membership.installed_history
        for pid in (0, 2, 3, 4)
    }
    reference = histories[0]
    assert all(h == reference for h in histories.values())


def test_membership_changes_are_announced_exactly_once_per_install():
    plan = FaultPlan().schedule_crash(3, 0.6)
    world = MulticastWorld(num=4, fault_plan=plan, seed=63).start()
    world.run(until=6.0)
    for pid in (0, 1, 2):
        changes = world.memberships[pid]
        rings = [ring for ring, _, _ in changes]
        assert rings == sorted(set(rings)), "duplicate installs at P%d" % pid
        # The final change names the excluded processor.
        assert changes[-1][2] == (3,)


def test_consecutive_reconfigurations_converge():
    plan = FaultPlan().schedule_crash(1, 0.5).schedule_crash(2, 0.55)
    world = MulticastWorld(num=7, fault_plan=plan, seed=64).start()
    world.scheduler.at(3.5, world.endpoints[0].multicast, "g", b"alive")
    world.run(until=10.0)
    correct = {0, 3, 4, 5, 6}
    for pid in correct:
        assert world.endpoints[pid].members == (0, 3, 4, 5, 6)
        assert world.delivered_payloads(pid) == [b"alive"]
    assert membership_violations(world.trace, correct, faulty={1, 2}) == []


def test_digests_level_also_reconfigures():
    # Membership reconfiguration must work below the SIGNATURES level
    # too (proposals are unsigned there, matching the security level).
    plan = FaultPlan().schedule_crash(2, 0.5)
    world = MulticastWorld(
        num=4, security=SecurityLevel.DIGESTS, fault_plan=plan, seed=65
    ).start()
    world.scheduler.at(3.0, world.endpoints[0].multicast, "g", b"post")
    world.run(until=8.0)
    for pid in (0, 1, 3):
        assert world.endpoints[pid].members == (0, 1, 3)
        assert world.delivered_payloads(pid) == [b"post"]


def test_minimum_viable_ring_of_two():
    plan = FaultPlan().schedule_crash(2, 0.5)
    world = MulticastWorld(num=3, fault_plan=plan, seed=66).start()
    world.scheduler.at(3.0, world.endpoints[0].multicast, "g", b"pair")
    world.run(until=8.0)
    for pid in (0, 1):
        assert world.endpoints[pid].members == (0, 1)
        assert world.delivered_payloads(pid) == [b"pair"]
