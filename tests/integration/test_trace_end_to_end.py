"""End-to-end gates for causal distributed tracing (:mod:`repro.obs.trace`).

Asserts the acceptance story of the tracing layer:

* the per-cause sums of every assembled trace DAG agree with the
  critical-path decomposition (:mod:`repro.obs.critpath`) *exactly*;
* the DAG covers the full causal depth — client interception, ring
  copies, token coverage, delivery, voting, and the reply leg — and,
  on the cluster workload, the gateway hop with the masked-Byzantine
  three-way fork and its voted merge;
* the JSONL export is byte-identical across repeated runs;
* hash-based sampling is deterministic and drops are counted.
"""

import pytest

from repro.obs.trace import (
    export_traces,
    fork_summary,
    render_trace_tree,
    run_cluster_workload,
    run_figure7_workload,
    verify_against_critpath,
)

SEED = 11


@pytest.fixture(scope="module")
def figure7():
    return run_figure7_workload(seed=SEED, operations=8)


@pytest.fixture(scope="module")
def cluster():
    return run_cluster_workload(seed=SEED, operations=4)


def export_bytes(workload_result, tmp_path, name):
    collector, obs, timeline, cost_model, shard_of_group, run_info = (
        workload_result
    )
    records = collector.assemble(
        timeline, cost_model=cost_model, shard_of_group=shard_of_group
    )
    path = tmp_path / name
    export_traces(str(path), records, collector.summary(records), run_info)
    return path.read_bytes()


def test_figure7_traces_agree_with_critpath_exactly(figure7):
    collector, obs, timeline, cost_model, _shards, _info = figure7
    mismatches = verify_against_critpath(
        collector, obs.spans, timeline, cost_model=cost_model
    )
    assert mismatches == []
    records = collector.assemble(timeline, cost_model=cost_model)
    assert records and all(r["closed"] for r in records)


def test_figure7_dag_covers_full_causal_depth(figure7):
    collector, obs, timeline, cost_model, _shards, _info = figure7
    for record in collector.assemble(timeline, cost_model=cost_model):
        kinds = {tuple(node["node"])[0] for node in record["nodes"]}
        # request -> ring transmission -> delivery -> vote -> reply
        # (no "cert" nodes: batch signatures are off in this workload)
        assert {"stage", "copy", "token", "delivered",
                "vote_copy", "vote_decided"} <= kinds
        stages = {node["node"][1] for node in record["nodes"]
                  if node["node"][0] == "stage"}
        assert {"intercepted", "multicast_queued", "ordered", "voted",
                "dispatched", "executed", "reply_voted"} <= stages
        # both phases of the invocation appear as vote decisions
        decided = {tuple(node["node"]) for node in record["nodes"]
                   if node["node"][0] == "vote_decided"}
        assert ("vote_decided", "req", 0) in decided
        assert ("vote_decided", "rep", 0) in decided


def test_figure7_export_byte_identical_across_runs(tmp_path):
    first = export_bytes(
        run_figure7_workload(seed=SEED, operations=4), tmp_path, "a.jsonl")
    second = export_bytes(
        run_figure7_workload(seed=SEED, operations=4), tmp_path, "b.jsonl")
    assert first == second


def test_cluster_traces_agree_with_critpath_exactly(cluster):
    collector, obs, timeline, cost_model, shard_of_group, _info = cluster
    mismatches = verify_against_critpath(
        collector, obs.spans, timeline,
        cost_model=cost_model, shard_of_group=shard_of_group,
    )
    assert mismatches == []


def test_cluster_shows_byzantine_fork_and_voted_merge(cluster):
    collector, obs, timeline, cost_model, shard_of_group, _info = cluster
    records = collector.assemble(
        timeline, cost_model=cost_model, shard_of_group=shard_of_group
    )
    forked = [r for r in records if fork_summary(r)["fork_width"] >= 3]
    assert forked  # cross-ring invocations fan out over all 3 gateways
    for record in forked:
        shape = fork_summary(record)
        assert shape["fork_width"] == 3
        assert shape["merged"] is True
        assert shape["corrupt_branches"] == 1
        # gateway hops appear on both legs of the invocation
        stages = {node["node"][1] for node in record["nodes"]
                  if node["node"][0] == "stage"}
        assert "gateway_forwarded" in stages
        assert "reply_gateway_forwarded" in stages
        tree = render_trace_tree(record)
        assert tree.count("gw_forward req") == 3
        assert "corrupt" in tree


def test_sampling_drops_deterministically():
    sampled = run_cluster_workload(seed=SEED, operations=4, sample_every=4)
    collector = sampled[0]
    assert collector.dropped > 0
    assert 0 < len(collector.traces()) < collector.sampled + collector.dropped
    again = run_cluster_workload(seed=SEED, operations=4, sample_every=4)
    assert {t.key for t in again[0].traces()} == {
        t.key for t in collector.traces()
    }
