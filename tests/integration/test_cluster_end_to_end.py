"""End-to-end tests for multi-ring clusters and cross-ring gateways."""

import pytest

from repro.cluster import ClusterConfig, ClusterManager
from repro.core.config import SurvivabilityCase
from repro.obs import Observability
from repro.obs.forensics import ForensicsHub, merge_timeline
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef

COUNTER_IDL = InterfaceDef(
    "Counter",
    [OperationDef("add", [ParamDef("amount", "long")], result="long")],
)


class CounterServant:
    def __init__(self):
        self.value = 0
        self.calls = 0

    def add(self, amount):
        self.calls += 1
        self.value += amount
        return self.value


def build(case=SurvivabilityCase.MAJORITY_VOTING, obs=None, server_ring=1, client_ring=0):
    cluster = ClusterManager(ClusterConfig(num_rings=2, case=case, seed=5), obs=obs)
    server = cluster.deploy(
        "counter", COUNTER_IDL, lambda pid: CounterServant(), ring=server_ring
    )
    client = cluster.deploy_client("driver", ring=client_ring)
    cluster.start()
    return cluster, server, client


def drive(cluster, client, server, operations, spacing=0.25):
    """Schedule ``operations`` spaced adds; returns the replies list."""
    stubs = cluster.client_stubs(client, COUNTER_IDL, server)
    replies = []
    for k in range(operations):
        def fire():
            for pid, stub in stubs:
                if not cluster.processors[pid].crashed:
                    stub.add(1, reply_to=replies.append)

        cluster.scheduler.at(0.1 + k * spacing, fire, label="test.drive")
    cluster.run(until=0.1 + operations * spacing + 1.5)
    return replies


def expected_replies(operations, client):
    return sorted(
        total for total in range(1, operations + 1) for _ in client.replica_procs
    )


@pytest.mark.parametrize(
    "case",
    [
        SurvivabilityCase.ACTIVE_REPLICATION,
        SurvivabilityCase.MAJORITY_VOTING,
        SurvivabilityCase.FULL_SURVIVABILITY,
    ],
)
def test_cross_ring_invocation_is_exactly_once_with_voted_replies(case):
    cluster, server, client = build(case=case)
    replies = drive(cluster, client, server, operations=3)
    # Exactly-once at every server replica despite three gateway copies.
    for pid, servant in server.servants.items():
        assert servant.calls == 3, "replica on P%d saw duplicates or losses" % pid
    # Every client replica received every voted reply.
    assert sorted(replies) == expected_replies(3, client)


def test_same_ring_invocation_never_touches_the_gateways():
    cluster, server, client = build(server_ring=0, client_ring=0)
    replies = drive(cluster, client, server, operations=2)
    assert sorted(replies) == expected_replies(2, client)
    for link_stats in cluster.gateway_stats().values():
        for replica in link_stats["replicas"]:
            assert replica["a_to_b"]["forwarded"] == 0
            assert replica["b_to_a"]["forwarded"] == 0


def test_hash_placed_groups_work_wherever_they_land():
    cluster = ClusterManager(ClusterConfig(num_rings=2, seed=9))
    server = cluster.deploy("svc", COUNTER_IDL, lambda pid: CounterServant())
    client = cluster.deploy_client("drv")
    cluster.start()
    assert cluster.directory.home_ring("svc") == server.ring
    replies = drive(cluster, client, server, operations=2)
    assert sorted(replies) == expected_replies(2, client)


def test_byzantine_gateway_is_outvoted_and_attributed():
    obs = Observability(forensics=ForensicsHub())
    cluster = ClusterManager(
        ClusterConfig(num_rings=2, case=SurvivabilityCase.FULL_SURVIVABILITY, seed=5),
        obs=obs,
    )
    server = cluster.deploy(
        "counter", COUNTER_IDL, lambda pid: CounterServant(), ring=1
    )
    client = cluster.deploy_client("driver", ring=0)
    corrupt = cluster.corrupt_gateway(0, 1, index=0)
    cluster.start()
    replies = drive(cluster, client, server, operations=4)

    # The corrupted copies were outvoted: service stayed exactly-once
    # and every client replica got the correct totals.
    for servant in server.servants.values():
        assert servant.calls == 4
    assert sorted(replies) == expected_replies(4, client)

    # The value-fault machinery attributed the corrupt gateway's pid on
    # the ring where its forged copies were voted against the majority.
    timeline = merge_timeline(obs.forensics)
    culprits = {e.get("culprit") for e in timeline if e.etype == "vote_divergence"}
    assert culprits == {corrupt.pid_b}
    # Gateway hops were recorded on both shards of the merged timeline.
    hop_shards = {e.shard for e in timeline if e.etype == "gateway_forward"}
    assert hop_shards == {0, 1}


def test_metrics_are_ring_labelled_and_spans_cover_gateway_stages():
    obs = Observability()
    cluster = ClusterManager(ClusterConfig(num_rings=2, seed=5), obs=obs)
    server = cluster.deploy(
        "counter", COUNTER_IDL, lambda pid: CounterServant(), ring=1
    )
    client = cluster.deploy_client("driver", ring=0)
    cluster.start()
    drive(cluster, client, server, operations=2)

    # Every RM metric carries its ring label; both rings reported.
    rings_seen = {
        dict(m.labels).get("ring") for m in obs.registry.family("rm.invocations_sent")
    }
    assert rings_seen == {0, 1}
    assert obs.registry.total("gateway.forwarded") > 0
    for metric in obs.registry.family("gateway.forwarded"):
        assert "ring" in dict(metric.labels)

    # One shared span tracker ties both rings' marks to one invocation:
    # the cross-ring stages appear in pipeline order.
    driver_spans = [s for s in obs.spans.closed_spans() if s.key[0] == "driver"]
    assert driver_spans, "no closed invocation spans for the driver group"
    span = driver_spans[0]
    stages = list(span.to_dict()["stages"])
    for stage in ("gateway_forwarded", "reply_gateway_forwarded"):
        assert stage in stages
    assert stages.index("gateway_forwarded") < stages.index("ordered")
    assert stages.index("executed") < stages.index("reply_gateway_forwarded")
    assert stages.index("reply_gateway_forwarded") < stages.index("reply_voted")
