"""Integration tests: replica reallocation via ordered state transfer.

Section 3.1 of the paper: "The replicas that are lost due to a
Byzantine processor must be reallocated to correct processors."  The
Replication Manager implements this with a join marker and a state
checkpoint flowing through the same totally-ordered stream as the
application's operations, so the fresh replica resumes at a consistent
cut and replays everything after it.
"""

import pytest

from repro.core.config import ImmuneConfig, SurvivabilityCase
from repro.core.immune import ImmuneSystem
from repro.orb.cdr import CdrDecoder, CdrEncoder
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef
from repro.sim.faults import FaultPlan

LEDGER_IDL = InterfaceDef(
    "Ledger",
    [
        OperationDef("append", [ParamDef("entry", "string")], oneway=True),
        OperationDef("size", [], result="long"),
    ],
)


class LedgerServant:
    def __init__(self):
        self.entries = []

    def append(self, entry):
        self.entries.append(entry)

    def size(self):
        return len(self.entries)

    def get_state(self):
        encoder = CdrEncoder()
        encoder.write(("sequence", "string"), self.entries)
        return encoder.getvalue()

    def set_state(self, state):
        self.entries = CdrDecoder(state).read(("sequence", "string"))

    @classmethod
    def from_state(cls, state):
        servant = cls()
        servant.set_state(state)
        return servant


def build(num=7, seed=17, fault_plan=None):
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=seed)
    immune = ImmuneSystem(num_processors=num, config=config, fault_plan=fault_plan)
    ledger = immune.deploy("ledger", LEDGER_IDL, lambda pid: LedgerServant(), [0, 1, 2])
    writer = immune.deploy_client("writer", [3, 4, 5])
    immune.start()
    return immune, ledger, writer


def write_entries(immune, writer, ledger, start, entries, spacing=0.05):
    stubs = immune.client_stubs(writer, LEDGER_IDL, ledger)
    for i, entry in enumerate(entries):

        def fire(entry=entry):
            for pid, stub in stubs:
                if not immune.processors[pid].crashed:
                    stub.append(entry)

        immune.scheduler.at(start + i * spacing, fire)


def test_join_transfers_state_and_replays_tail():
    immune, ledger, writer = build()
    before = ["pre-%d" % i for i in range(4)]
    after = ["post-%d" % i for i in range(4)]
    write_entries(immune, writer, ledger, 0.3, before)
    immune.scheduler.at(1.5, immune.reallocate, "ledger", 6, LedgerServant.from_state)
    write_entries(immune, writer, ledger, 3.0, after)
    immune.run(until=6.0)
    assert immune.group_members("ledger") == (0, 1, 2, 6)
    fresh = ledger.servants[6]
    assert fresh.entries == before + after
    for pid in (0, 1, 2):
        assert ledger.servants[pid].entries == before + after


def test_joined_replica_counts_in_subsequent_votes():
    immune, ledger, writer = build()
    immune.scheduler.at(0.5, immune.reallocate, "ledger", 6, LedgerServant.from_state)
    write_entries(immune, writer, ledger, 2.0, ["x"])
    results = []

    def query():
        for pid, stub in immune.client_stubs(writer, LEDGER_IDL, ledger):
            stub.size(reply_to=results.append)

    immune.scheduler.at(3.0, query)
    immune.run(until=5.0)
    assert immune.group_members("ledger") == (0, 1, 2, 6)
    assert results == [1, 1, 1]
    # With degree 4 the majority is 3: the fresh replica's responses
    # participate (voter stats show copies from four senders).
    voter = immune.managers[3].voter_for("writer")
    assert voter is not None


def test_reallocation_after_crash_restores_degree():
    plan = FaultPlan().schedule_crash(2, 0.8)
    immune, ledger, writer = build(fault_plan=plan)
    before = ["a", "b"]
    write_entries(immune, writer, ledger, 0.3, before)
    # Wait out the exclusion, then re-establish three-way replication.
    immune.scheduler.at(4.0, immune.reallocate, "ledger", 6, LedgerServant.from_state)
    after = ["c", "d"]
    write_entries(immune, writer, ledger, 6.0, after)
    immune.run(until=9.0)
    assert 2 not in immune.surviving_members()
    assert immune.group_members("ledger") == (0, 1, 6)
    assert ledger.servants[6].entries == before + after
    assert ledger.servants[0].entries == before + after


def test_reallocating_client_group_is_rejected():
    immune, ledger, writer = build()
    from repro.core.config import ConfigError

    with pytest.raises(ConfigError):
        immune.reallocate("writer", 6, LedgerServant.from_state)
