"""Integration test: complete processor recovery through the facade.

The full survivability story end to end: a processor suffers a network
outage, is excluded, the service keeps running degraded; the processor
is repaired, rejoins the membership, and its replicas are restored by
ordered state transfer — three-way replication is back without ever
stopping the service.
"""

from repro.core.config import ImmuneConfig, SurvivabilityCase
from repro.core.immune import ImmuneSystem
from repro.orb.cdr import CdrDecoder, CdrEncoder
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef
from repro.sim.faults import FaultPlan, LinkFaults

REGISTER_IDL = InterfaceDef(
    "Register",
    [
        OperationDef("press", [ParamDef("label", "string")], oneway=True),
        OperationDef("tape", [], result=("sequence", "string")),
    ],
)


class RegisterServant:
    def __init__(self):
        self.entries = []

    def press(self, label):
        self.entries.append(label)

    def tape(self):
        return list(self.entries)

    def get_state(self):
        return CdrEncoder().write(("sequence", "string"), self.entries).getvalue()

    def set_state(self, state):
        self.entries = CdrDecoder(state).read(("sequence", "string"))

    @classmethod
    def from_state(cls, state):
        servant = cls()
        servant.set_state(state)
        return servant


def test_outage_exclusion_rejoin_and_replica_restoration():
    plan = FaultPlan(active_from=0.5, active_until=4.0)
    for other in range(6):
        if other != 1:
            plan.set_link(1, other, LinkFaults(loss_prob=1.0))
            plan.set_link(other, 1, LinkFaults(loss_prob=1.0))
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=81)
    immune = ImmuneSystem(num_processors=6, config=config, fault_plan=plan)
    register = immune.deploy(
        "register", REGISTER_IDL, lambda pid: RegisterServant(), [0, 1, 2]
    )
    clerk = immune.deploy_client("clerk", [3, 4, 5])
    immune.start()
    stubs = immune.client_stubs(clerk, REGISTER_IDL, register)

    def press(label):
        for pid, stub in stubs:
            if not immune.processors[pid].crashed:
                stub.press(label)

    immune.scheduler.at(0.2, press, "before-outage")
    immune.scheduler.at(6.0, press, "during-degradation")
    # Repair: rejoin + restore the register replica by state transfer.
    immune.scheduler.at(
        8.0,
        immune.recover_processor,
        1,
        {"register": RegisterServant.from_state},
    )
    immune.scheduler.at(20.0, press, "after-recovery")
    immune.run(until=24.0)

    # Degradation really happened...
    excluded = any(
        1 in rec.excluded
        for rec in immune.trace.of_kind("membership.install")
        if rec.get("excluded")
    )
    assert excluded, "P1 should have been excluded during the outage"
    # ...and recovery really completed.
    members = immune.surviving_members()
    assert 1 in members, "P1 should be back in the membership"
    assert immune.group_members("register") == (0, 1, 2)
    expected = ["before-outage", "during-degradation", "after-recovery"]
    fresh = register.servants[1]
    assert fresh.entries == expected, "restored replica state: %r" % fresh.entries
    for pid in (0, 2):
        assert register.servants[pid].entries == expected

    # The restored replica participates: a query is answered everywhere
    # and the restored replica's copies count toward the votes.
    answers = {pid: [] for pid, _ in stubs}

    def query():
        for pid, stub in stubs:
            stub.tape(reply_to=answers[pid].append)

    immune.scheduler.at(24.5, query)
    immune.run(until=28.0)
    for pid, got in answers.items():
        assert got == [expected], "client on P%d got %r" % (pid, got)
