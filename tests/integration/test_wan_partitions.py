"""Partition edge cases on the WAN federation (satellite drills).

Partitions are decided at *send* time on the site-gateway forwarders:
cutting a cable does not recall packets already in flight, and healing
does not resurrect packets dropped while it was cut.  These tests pin
the three awkward corners of that model — a partition in place before
the federation's first token rotation, a heal landing in the middle of
an invocation's round trip, and a site that is partitioned *and*
Byzantine at the same time — and assert the invariants that must hold
in every one of them: delivered operations execute exactly once and
the geo-bank's money is conserved.
"""

from repro.obs import Observability
from repro.obs.forensics import ForensicsHub
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef
from repro.sim.faults import FaultPlan
from repro.wan import WanConfig, WanManager
from repro.workloads.bank import GeoBank

COUNTER_IDL = InterfaceDef(
    "Counter",
    [OperationDef("add", [ParamDef("n", "long")], result="long")],
)


class CountingServant:
    def __init__(self):
        self.calls = 0
        self.total = 0

    def add(self, n):
        self.calls += 1
        self.total += n
        return self.total


def _federation(plan, latency=0.020, seed=3):
    config = WanConfig(sites=("alpha", "beta"), seed=seed, latency=latency)
    wan = WanManager(
        config=config,
        obs=Observability(forensics=ForensicsHub()),
        fault_plan=plan,
    )
    server = wan.deploy(
        "counter", COUNTER_IDL, lambda pid: CountingServant(), site="alpha"
    )
    client = wan.deploy_client("driver", site="beta")
    stubs = wan.client_stubs(client, COUNTER_IDL, server)
    replies = []

    def fire_at(at, tag):
        def fire():
            for _pid, stub in stubs:
                stub.add(1, reply_to=lambda value, tag=tag: replies.append((tag, value)))

        wan.scheduler.at(at, fire, label="test.fire")

    return wan, server, client, replies, fire_at


def test_partition_before_first_token_rotation():
    """A link partitioned from t=0 — before any backbone token has
    rotated — drops the first cross-site invocation cleanly; after the
    heal the next one executes exactly once."""
    plan = FaultPlan()
    plan.schedule_partition("alpha", "beta", start=0.0, heal=0.6)
    wan, server, client, replies, fire_at = _federation(plan)
    fire_at(0.2, "during")   # request copies dropped at send
    fire_at(0.9, "after")    # post-heal: full round trip
    wan.start()
    wan.run(until=3.0)

    assert all(s.calls == 1 for s in server.servants.values())
    tags = {tag for tag, _value in replies}
    assert tags == {"after"}
    assert len(replies) == len(client.replica_procs)
    # the drop is recorded as partition-caused on the request direction
    drops = sum(
        r.forward_ba.stats["dropped"]
        for link in wan.links.values()
        for r in link.replicas
    )
    assert drops >= 3  # one request copy per site-gateway replica


def test_heal_mid_invocation_keeps_exactly_once():
    """The partition begins after the request is sent but before the
    reply is: the request lands (send-time semantics), the server
    executes exactly once, the reply dies on the cut link, and healing
    does not resurrect it — re-issuing is the client's job, and the
    re-issued operation also executes exactly once."""
    plan = FaultPlan()
    plan.schedule_partition("alpha", "beta", start=0.6, heal=1.2)
    # 200 ms one-way flight: wide margins around the cut
    wan, server, client, replies, fire_at = _federation(plan, latency=0.2)
    fire_at(0.5, "split")    # request sent ~0.51 < 0.6; reply sent ~0.73: dropped
    fire_at(1.5, "after")    # post-heal round trip
    wan.start()
    wan.run(until=4.0)

    # the split invocation executed exactly once despite its lost reply
    assert all(s.calls == 2 for s in server.servants.values())
    by_tag = {}
    for tag, value in replies:
        by_tag.setdefault(tag, []).append(value)
    assert "split" not in by_tag
    assert sorted(by_tag["after"]) == [2] * len(client.replica_procs)
    # replies died on the return path, at every gateway replica
    reply_drops = sum(
        r.forward_ab.stats["dropped"]
        for link in wan.links.values()
        for r in link.replicas
    )
    assert reply_drops >= 3


def test_partitioned_and_byzantine_site_conserves_money():
    """A site that is compromised *and* partitioned: the partition
    isolates gamma entirely, the compromise corrupts whatever its
    gateways send in the windows the partition allows.  Either way no
    rogue operation reaches the surviving sites' state, honest
    alpha-beta traffic is untouched, and the bank stays conserved."""
    plan = FaultPlan()
    plan.schedule_partition("gamma", start=1.2, heal=2.0)
    obs = Observability(forensics=ForensicsHub())
    config = WanConfig(sites=("alpha", "beta", "gamma"), seed=11, latency=0.010)
    wan = WanManager(config=config, obs=obs, fault_plan=plan)
    bank = GeoBank(
        wan,
        branches=["north", "south", "east"],
        branch_sites={"north": "alpha", "south": "beta", "east": "gamma"},
        teller_site="alpha",
    )
    rogue, rogue_stubs = bank.add_teller("bank.rogue", "gamma")

    # honest pre-fault traffic, including to the doomed site
    bank.schedule_transfer(0.2, "north", 1, "south", 1, 10)
    bank.schedule_transfer(0.5, "east", 1, "north", 1, 7, stubs=rogue_stubs)
    # gamma turns Byzantine, then is partitioned from everyone
    wan.compromise_site("gamma", at_time=1.0)
    # rogue attacks while compromised-but-connected (corrupted copies,
    # no majority), while partitioned (dropped at send), and after the
    # heal while still compromised (corrupted again)
    bank.schedule_transfer(1.1, "north", 2, "south", 2, 50, stubs=rogue_stubs)
    bank.schedule_transfer(1.5, "north", 1, "south", 1, 60, stubs=rogue_stubs)
    bank.schedule_transfer(2.3, "south", 1, "north", 1, 70, stubs=rogue_stubs)
    # honest alpha-beta traffic throughout
    bank.schedule_transfer(1.6, "north", 2, "south", 2, 3)
    bank.schedule_transfer(2.6, "south", 2, "north", 2, 4)
    wan.start()
    wan.run(until=5.0)

    assert bank.conserved()
    assert bank.replicas_agree()
    assert not bank.failed
    labels = {}
    for label, _value in bank.replies:
        labels[label] = labels.get(label, 0) + 1
    degree = config.replication_degree
    # honest ops: exactly one reply per teller replica, every time
    for honest in (
        "transfer:north#1->south#1:10@0.2",
        "transfer:east#1->north#1:7@0.5",
        "transfer:north#2->south#2:3@1.6",
        "transfer:south#2->north#2:4@2.6",
    ):
        assert labels[honest + ":w"] == degree
        assert labels[honest + ":d"] == degree
    # every rogue attack died before touching surviving state
    for rogue_op in (
        "transfer:north#2->south#2:50@1.1",
        "transfer:north#1->south#1:60@1.5",
        "transfer:south#1->north#1:70@2.3",
    ):
        assert rogue_op + ":w" not in labels
        assert rogue_op + ":d" not in labels
