"""Integration tests: the multicast stack under injected faults."""

import pytest

from repro.bench.properties import (
    delivery_violations,
    detector_violations,
    membership_violations,
)
from repro.multicast.adversary import (
    MalformedTokenBehaviour,
    MasqueradeBehaviour,
    MutantTokenBehaviour,
    ReceiveOmissionBehaviour,
    SilentBehaviour,
)
from repro.multicast.config import SecurityLevel
from repro.sim.faults import FaultPlan, LinkFaults
from tests.support import MulticastWorld


def pump_messages(world, count=10, spacing=0.05, start=0.1, sender=0):
    for i in range(count):
        world.scheduler.at(
            start + i * spacing,
            world.endpoints[sender].multicast,
            "g",
            b"m%02d" % i,
        )
    return [b"m%02d" % i for i in range(count)]


def test_message_loss_repaired_by_retransmission():
    plan = FaultPlan(default=LinkFaults(loss_prob=0.2), active_until=1.0)
    world = MulticastWorld(num=4, fault_plan=plan, seed=5).start()
    expected = pump_messages(world)
    world.run(until=5.0)
    for pid in range(4):
        assert world.delivered_payloads(pid) == expected
    assert delivery_violations(world.trace, set(range(4))) == []


def test_message_corruption_detected_by_digests():
    plan = FaultPlan(default=LinkFaults(corrupt_prob=0.2), active_until=1.0)
    world = MulticastWorld(num=4, fault_plan=plan, seed=6).start()
    expected = pump_messages(world)
    world.run(until=5.0)
    assert world.network.stats["corrupted"] > 0
    for pid in range(4):
        assert world.delivered_payloads(pid) == expected
    assert delivery_violations(world.trace, set(range(4))) == []


def test_processor_crash_is_excluded_and_ring_continues():
    plan = FaultPlan().schedule_crash(2, 0.5)
    world = MulticastWorld(num=4, fault_plan=plan, seed=7).start()
    pump_messages(world, count=4, start=0.1, spacing=0.05)
    extra = [b"post-%d" % i for i in range(3)]
    for i, payload in enumerate(extra):
        world.scheduler.at(3.0 + 0.05 * i, world.endpoints[1].multicast, "g", payload)
    world.run(until=8.0)
    correct = {0, 1, 3}
    for pid in correct:
        assert world.endpoints[pid].members == (0, 1, 3)
        assert world.delivered_payloads(pid)[-3:] == extra
    assert membership_violations(world.trace, correct, faulty={2}) == []
    assert detector_violations(world.trace, correct, faulty={2}) == []


def test_fail_to_send_is_suspected_and_excluded():
    world = MulticastWorld(num=4, seed=8).start()
    SilentBehaviour(at_time=0.4).compromise(world.endpoints[3])
    pump_messages(world, count=4)
    world.run(until=8.0)
    correct = {0, 1, 2}
    for pid in correct:
        assert 3 not in world.endpoints[pid].members
        assert world.endpoints[pid].detector.reasons_for(3), "P3 must stay suspected"
    # At least one correct processor observed the fail-to-send directly.
    assert any(
        "fail_to_send" in world.endpoints[pid].detector.reasons_for(3)
        for pid in correct
    )
    assert membership_violations(world.trace, correct, faulty={3}) == []


def test_receive_omission_is_suspected_via_aru_stall():
    world = MulticastWorld(num=4, seed=9).start()
    ReceiveOmissionBehaviour(at_time=0.2).compromise(world.endpoints[1])
    pump_messages(world, count=6, start=0.3)
    world.run(until=10.0)
    correct = {0, 2, 3}
    for pid in correct:
        assert 1 not in world.endpoints[pid].members
    assert detector_violations(world.trace, correct, faulty={1}) == []


def test_mutant_tokens_provably_convict_the_equivocator():
    world = MulticastWorld(num=4, seed=10).start()
    behaviour = MutantTokenBehaviour(at_time=0.4).compromise(world.endpoints[2])
    pump_messages(world, count=4)
    world.run(until=8.0)
    behaviour.restore()
    correct = {0, 1, 3}
    convicted_by = [
        pid
        for pid in correct
        if "mutant_token" in world.endpoints[pid].detector.reasons_for(2)
    ]
    assert convicted_by, "no correct processor convicted the equivocator"
    for pid in correct:
        assert 2 not in world.endpoints[pid].members
    assert membership_violations(world.trace, correct, faulty={2}) == []
    assert delivery_violations(world.trace, correct) == []


def test_masqueraded_message_is_never_delivered():
    world = MulticastWorld(num=4, seed=11).start()
    MasqueradeBehaviour(
        victim_id=0, dest_group="g", payload=b"FORGED", at_time=0.3
    ).compromise(world.endpoints[3])
    expected = pump_messages(world, count=5)
    world.run(until=5.0)
    for pid in range(4):
        assert b"FORGED" not in world.delivered_payloads(pid)
        assert world.delivered_payloads(pid) == expected


def test_masquerade_succeeds_without_digests():
    # Sanity check of the threat model: at security level NONE the
    # forged message *is* delivered — the protection really does come
    # from the digests in the signed token.
    world = MulticastWorld(num=4, security=SecurityLevel.NONE, seed=11).start()
    MasqueradeBehaviour(
        victim_id=0, dest_group="g", payload=b"FORGED", at_time=5.0
    ).compromise(world.endpoints[3])
    world.scheduler.at(5.2, world.endpoints[0].multicast, "g", b"real")
    world.run(until=7.0)
    assert b"FORGED" in world.delivered_payloads(1)


def test_malformed_token_suspected_by_form_check():
    world = MulticastWorld(num=4, seed=12).start()
    MalformedTokenBehaviour(at_time=0.4).compromise(world.endpoints[1])
    pump_messages(world, count=3)
    world.run(until=8.0)
    correct = {0, 2, 3}
    for pid in correct:
        assert "malformed_token" in world.endpoints[pid].detector.reasons_for(1)
        assert 1 not in world.endpoints[pid].members


def test_two_simultaneous_crashes_within_resilience():
    # n=7 tolerates floor((7-1)/3) = 2 faults.
    plan = FaultPlan().schedule_crash(5, 0.5).schedule_crash(6, 0.6)
    world = MulticastWorld(num=7, fault_plan=plan, seed=14).start()
    pump_messages(world, count=4)
    tail = [b"tail-%d" % i for i in range(3)]
    for i, payload in enumerate(tail):
        world.scheduler.at(4.0 + 0.05 * i, world.endpoints[0].multicast, "g", payload)
    world.run(until=10.0)
    correct = {0, 1, 2, 3, 4}
    for pid in correct:
        assert world.endpoints[pid].members == (0, 1, 2, 3, 4)
        assert world.delivered_payloads(pid)[-3:] == tail
    assert membership_violations(world.trace, correct, faulty={5, 6}) == []


def test_no_fault_run_has_perfect_accuracy():
    world = MulticastWorld(num=5, seed=15).start()
    pump_messages(world, count=8)
    world.run(until=4.0)
    correct = set(range(5))
    assert detector_violations(world.trace, correct) == []
    assert membership_violations(world.trace, correct) == []
    assert delivery_violations(world.trace, correct) == []
