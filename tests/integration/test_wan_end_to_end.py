"""End-to-end federation tests: rings of rings across sites.

A WAN invocation crosses four total orders — the client's ring, the
source site's backbone, the destination site's backbone, and back —
with a voted site-gateway hop in the middle.  These tests drive real
cross-site invocations and assert the federation's contract: exactly
once, correct replies, one Byzantine site-gateway replica masked and
attributed, a fully compromised site failing safe, and the
observability plane (span stages, site-labelled metrics, per-site
critical path) telling the truth about all of it.
"""

import pytest

from repro.core.config import SurvivabilityCase
from repro.obs import Observability
from repro.obs.critpath import attribute_spans, render_critpath
from repro.obs.forensics import ForensicsHub, merge_timeline, score
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef
from repro.sim.faults import FaultPlan
from repro.wan import SiteSpec, WanConfig, WanManager
from repro.workloads.bank import GeoBank

COUNTER_IDL = InterfaceDef(
    "Counter",
    [OperationDef("add", [ParamDef("n", "long")], result="long")],
)


class CountingServant:
    def __init__(self):
        self.total = 0
        self.calls = 0

    def add(self, n):
        self.calls += 1
        self.total += n
        return self.total


def _drive(wan, client, server, operations, start=0.1, interval=0.25):
    stubs = wan.client_stubs(client, COUNTER_IDL, server)
    replies = []
    for k in range(operations):
        def fire():
            for _pid, stub in stubs:
                stub.add(1, reply_to=replies.append)

        wan.scheduler.at(start + k * interval, fire, label="test.drive")
    return replies


def test_cross_site_invocation_exactly_once():
    config = WanConfig(sites=("alpha", "beta"), seed=3, latency=0.020)
    obs = Observability(forensics=ForensicsHub())
    wan = WanManager(config=config, obs=obs)
    server = wan.deploy(
        "counter", COUNTER_IDL, lambda pid: CountingServant(), site="alpha"
    )
    client = wan.deploy_client("driver", site="beta")
    replies = _drive(wan, client, server, operations=5)
    wan.start()
    wan.run(until=2.5)

    assert all(s.calls == 5 for s in server.servants.values())
    expected = sorted(
        total for total in range(1, 6) for _ in client.replica_procs
    )
    assert sorted(replies) == expected
    # every site-gateway replica carried traffic both ways
    for link in wan.links.values():
        for replica in link.replicas:
            assert replica.forward_ab.stats["forwarded"] > 0
            assert replica.forward_ba.stats["forwarded"] > 0


def test_byzantine_site_gateway_masked_and_attributed():
    config = WanConfig(sites=("alpha", "beta"), seed=5, latency=0.015)
    obs = Observability(forensics=ForensicsHub())
    wan = WanManager(config=config, obs=obs)
    server = wan.deploy(
        "counter", COUNTER_IDL, lambda pid: CountingServant(), site="beta"
    )
    client = wan.deploy_client("driver", site="alpha")
    corrupt = wan.corrupt_site_gateway("alpha", "beta", index=0, direction="alpha")
    replies = _drive(wan, client, server, operations=5)
    wan.start()
    wan.run(until=4.0)

    # masked: the two honest replicas outvote the corrupt copy
    assert all(s.calls == 5 for s in server.servants.values())
    expected = sorted(
        total for total in range(1, 6) for _ in client.replica_procs
    )
    assert sorted(replies) == expected
    # attributed: only the corrupting direction's destination pid
    timeline = merge_timeline(obs.forensics)
    culprits = {
        e.get("culprit")
        for e in timeline
        if e.etype == "vote_divergence" and not e.get("late")
    }
    assert culprits == {corrupt.pid_b}
    scorecard = score(obs.forensics, timeline)
    assert scorecard["precision"] == 1.0
    assert scorecard["recall"] == 1.0


def test_wan_span_stages_price_the_flight():
    rtt = 0.080
    latency = {("alpha", "beta"): 0.5 * rtt, ("beta", "alpha"): 0.5 * rtt}
    config = WanConfig(sites=("alpha", "beta"), seed=9, latency=latency)
    obs = Observability(forensics=ForensicsHub())
    wan = WanManager(config=config, obs=obs)
    server = wan.deploy(
        "counter", COUNTER_IDL, lambda pid: CountingServant(), site="beta"
    )
    client = wan.deploy_client("driver", site="alpha")
    _drive(wan, client, server, operations=3, interval=0.5)
    wan.start()
    wan.run(until=3.0)

    closed = obs.spans.closed_spans()
    assert closed
    marks = closed[0].marks
    assert "wan_forwarded" in marks
    assert "reply_wan_forwarded" in marks
    assert marks["wan_forwarded"] <= marks["ordered"]
    # the wan_forwarded stage delta carries the one-way flight
    assert marks["wan_forwarded"] - marks["multicast_queued"] >= 0.5 * rtt

    report = attribute_spans(
        obs.spans,
        merge_timeline(obs.forensics),
        shard_of_group=wan.shard_of_group(),
        site_of_shard=wan.site_of_shard(),
    )
    causes = {row["cause"]: row["seconds"] for row in report["per_cause"]}
    # the WAN flight dominates an 80 ms RTT invocation's critical path
    assert causes.get("wan_hop", 0.0) > 0.5 * report["total_seconds"]
    assert "per_site" in report
    assert set(report["per_site"]) <= {"alpha", "beta"}
    rendered = render_critpath(report)
    assert "by site:" in rendered
    assert "wan_hop" in rendered


def test_metrics_carry_site_labels():
    config = WanConfig(sites=("alpha", "beta"), seed=3, latency=0.010)
    obs = Observability(forensics=ForensicsHub())
    wan = WanManager(config=config, obs=obs)
    server = wan.deploy(
        "counter", COUNTER_IDL, lambda pid: CountingServant(), site="alpha"
    )
    client = wan.deploy_client("driver", site="beta")
    _drive(wan, client, server, operations=2)
    wan.start()
    wan.run(until=1.5)

    obs.registry.collect()
    sites = {
        dict(metric.labels).get("site")
        for metric in obs.registry.family("multicast.delivered")
    }
    assert {"alpha", "beta"} <= sites
    wan_forwarded = list(obs.registry.family("wan.forwarded"))
    assert wan_forwarded
    for metric in wan_forwarded:
        labels = dict(metric.labels)
        assert labels["site"] in ("alpha", "beta")
        assert labels["to_site"] in ("alpha", "beta")
        assert labels["site"] != labels["to_site"]
    # federation-level gauges
    assert obs.registry.value("wan.sites") == 2
    assert obs.registry.value("wan.groups") == 2


def test_whole_site_compromise_fails_safe():
    obs = Observability(forensics=ForensicsHub())
    config = WanConfig(sites=("alpha", "beta", "gamma"), seed=11, latency=0.010)
    wan = WanManager(config=config, obs=obs, fault_plan=FaultPlan())
    bank = GeoBank(
        wan,
        branches=["north", "south", "east"],
        branch_sites={"north": "alpha", "south": "beta", "east": "gamma"},
        teller_site="alpha",
    )
    rogue, rogue_stubs = bank.add_teller("bank.rogue", "gamma")

    # pre-compromise: honest cross-site traffic and a still-honest rogue
    bank.schedule_transfer(0.2, "north", 1, "south", 1, 10)
    bank.schedule_transfer(0.5, "east", 1, "north", 1, 7, stubs=rogue_stubs)
    wan.compromise_site("gamma", at_time=1.0)
    # post-compromise: the rogue attacks the surviving sites; every
    # invocation must leave gamma through corrupted forwarders
    bank.schedule_transfer(1.1, "north", 2, "south", 2, 50, stubs=rogue_stubs)
    # honest traffic between survivors carries on
    bank.schedule_transfer(1.4, "north", 2, "south", 2, 3)
    wan.start()
    wan.run(until=3.5)

    assert bank.conserved()
    assert bank.replicas_agree()
    assert not bank.failed
    labels = {}
    for label, _value in bank.replies:
        labels[label] = labels.get(label, 0) + 1
    degree = config.replication_degree
    # the rogue's pre-compromise transfer completed everywhere ...
    assert labels["transfer:east#1->north#1:7@0.5:w"] == degree
    assert labels["transfer:east#1->north#1:7@0.5:d"] == degree
    # ... its post-compromise attack executed nowhere (fail-safe omission)
    assert "transfer:north#2->south#2:50@1.1:w" not in labels
    # ... and honest post-compromise traffic was untouched
    assert labels["transfer:north#2->south#2:3@1.4:w"] == degree
    assert labels["transfer:north#2->south#2:3@1.4:d"] == degree
    # the suppressed compromise is charged to gamma's gateways only
    scorecard = score(obs.forensics)
    assert scorecard["precision"] == 1.0
    assert scorecard["recall"] == 1.0
