"""Integration tests: the multicast stack on a healthy LAN."""

import pytest

from repro.multicast.config import SecurityLevel
from tests.support import MulticastWorld


@pytest.mark.parametrize(
    "security",
    [SecurityLevel.NONE, SecurityLevel.DIGESTS, SecurityLevel.SIGNATURES],
)
def test_all_processors_deliver_same_messages_in_same_order(security):
    world = MulticastWorld(num=4, security=security).start()
    for i in range(10):
        world.endpoints[i % 4].multicast("group-a", b"msg-%d" % i)
    world.run(until=2.0)
    sequences = [world.delivered[p] for p in range(4)]
    assert all(seq == sequences[0] for seq in sequences[1:])
    assert len(sequences[0]) == 10


def test_messages_for_different_groups_share_one_total_order():
    world = MulticastWorld(num=3, security=SecurityLevel.SIGNATURES).start()
    world.endpoints[0].multicast("alpha", b"a1")
    world.endpoints[1].multicast("beta", b"b1")
    world.endpoints[2].multicast("alpha", b"a2")
    world.run(until=2.0)
    orders = [[(g, p) for _, _, g, p in world.delivered[i]] for i in range(3)]
    assert orders[0] == orders[1] == orders[2]
    assert sorted(orders[0]) == [("alpha", b"a1"), ("alpha", b"a2"), ("beta", b"b1")]


def test_delivery_includes_sender_and_contiguous_seq():
    world = MulticastWorld(num=3, security=SecurityLevel.DIGESTS).start()
    for i in range(6):
        world.endpoints[0].multicast("g", b"m%d" % i)
    world.run(until=2.0)
    records = world.delivered[1]
    assert len(records) == 6
    seqs = [seq for seq, _, _, _ in records]
    assert seqs == sorted(seqs)
    assert all(sender == 0 for _, sender, _, _ in records)
    assert [p for _, _, _, p in records] == [b"m%d" % i for i in range(6)]


def test_more_messages_than_one_token_visit():
    # 25 messages from one sender with j=6 need five token visits.
    world = MulticastWorld(num=3, security=SecurityLevel.SIGNATURES).start()
    for i in range(25):
        world.endpoints[1].multicast("g", b"x%02d" % i)
    world.run(until=3.0)
    for p in range(3):
        assert world.delivered_payloads(p) == [b"x%02d" % i for i in range(25)]


def test_initial_membership_installed_everywhere():
    world = MulticastWorld(num=5).start()
    world.run(until=0.5)
    for p in range(5):
        assert world.memberships[p][0] == (1, (0, 1, 2, 3, 4), ())
        assert world.endpoints[p].members == (0, 1, 2, 3, 4)


def test_quiet_ring_stays_stable():
    # With nothing to send, the token just circulates: no suspicion,
    # no reconfiguration.
    world = MulticastWorld(num=4).start()
    world.run(until=2.0)
    for p in range(4):
        assert len(world.memberships[p]) == 1
        assert world.endpoints[p].detector.suspects() == set()


def test_single_processor_ring():
    world = MulticastWorld(num=1).start()
    world.endpoints[0].multicast("g", b"solo")
    world.run(until=1.0)
    assert world.delivered_payloads(0) == [b"solo"]


def test_large_payloads_survive():
    world = MulticastWorld(num=3, security=SecurityLevel.SIGNATURES).start()
    blob = bytes(range(256)) * 8  # 2 KiB
    world.endpoints[2].multicast("g", blob)
    world.run(until=1.0)
    for p in range(3):
        assert world.delivered_payloads(p) == [blob]


def test_signature_level_charges_signing_cpu():
    world = MulticastWorld(num=3, security=SecurityLevel.SIGNATURES).start()
    world.run(until=0.5)
    accounting = world.processors[0].cpu_accounting
    assert accounting.get("crypto.sign", 0) > 0
    assert accounting.get("crypto.verify", 0) > 0


def test_none_level_does_not_sign():
    world = MulticastWorld(num=3, security=SecurityLevel.NONE).start()
    world.endpoints[0].multicast("g", b"m")
    world.run(until=0.5)
    accounting = world.processors[0].cpu_accounting
    assert accounting.get("crypto.sign", 0) == 0
