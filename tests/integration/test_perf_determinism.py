"""Integration gate: the wall-clock caches are invisible to the simulation.

Runs the Figure-7 full-survivability workload twice from the same seed —
once with every memo cache and fast path enabled (optimized mode), once
with the pre-optimisation implementations (baseline mode) — and asserts:

* the simulated results (throughput, message counts, per-category CPU
  accounting) are exactly equal, and
* the observability JSONL export is **byte-identical** across modes.

This is the determinism invariant the hot-path overhaul promises: every
cache saves host CPU only; no simulated timestamp, value, or trace
record may depend on whether the caches are on.
"""

from repro import perf
from repro.bench.harness import run_packet_driver_case
from repro.bench.perf import _determinism_check
from repro.core.config import SurvivabilityCase

CASE = SurvivabilityCase.FULL_SURVIVABILITY
INTERVAL = 300e-6
SEED = 7


def _fingerprint(result):
    return (
        result.throughput,
        result.offered,
        result.sent,
        result.received,
        tuple(sorted(result.cpu.items())),
    )


def test_simulated_results_equal_across_modes():
    fingerprints = {}
    for optimized in (False, True):
        with perf.mode(optimized):
            result = run_packet_driver_case(
                CASE, INTERVAL, duration=0.06, warmup=0.03, seed=SEED
            )
            fingerprints[optimized] = _fingerprint(result)
    assert fingerprints[False] == fingerprints[True]


def test_obs_export_byte_identical_caches_on_and_off():
    """The shipped gate's own determinism check passes: a seeded run's
    observability export has the same bytes with caches on and off."""
    outcome = _determinism_check()
    assert outcome["jsonl_identical"], "obs export differs between modes"
    assert outcome["sim_equal"], "simulated results differ between modes"
    assert outcome["jsonl_lines"] > 0


def test_repeated_optimized_runs_are_identical():
    """Same seed, same mode, twice in one process: memo state left over
    from the first run must not leak into the second."""
    fingerprints = []
    for _ in range(2):
        with perf.mode(True):
            result = run_packet_driver_case(
                CASE, INTERVAL, duration=0.06, warmup=0.03, seed=SEED
            )
            fingerprints.append(_fingerprint(result))
    assert fingerprints[0] == fingerprints[1]
