"""The multi-branch bank: conservation across rings through the gateway."""

from repro.cluster import ClusterConfig, ClusterManager
from repro.core.config import SurvivabilityCase
from repro.workloads.bank import MultiBranchBank


def build_bank(case=SurvivabilityCase.MAJORITY_VOTING, corrupt_gateway=False, seed=13):
    cluster = ClusterManager(ClusterConfig(num_rings=2, case=case, seed=seed))
    bank = MultiBranchBank(
        cluster,
        branches=2,
        accounts_per_branch=2,
        initial_balance=100,
        branch_rings={"branch0": 0, "branch1": 1},
        teller_ring=0,
    )
    if corrupt_gateway:
        cluster.corrupt_gateway(0, 1, index=0)
    cluster.start()
    return cluster, bank


def test_branches_span_rings_and_seed_identically():
    cluster, bank = build_bank()
    assert bank.branches["branch0"].ring == 0
    assert bank.branches["branch1"].ring == 1
    cluster.run(until=0.5)
    assert bank.replicas_agree()
    assert bank.conserved()
    for by_pid in bank.branch_totals().values():
        assert set(by_pid.values()) == {200}


def test_cross_ring_transfer_conserves_total_assets():
    cluster, bank = build_bank()
    # Operations spaced beyond a cross-ring round trip (the replica
    # determinism contract documented on schedule_transfer).
    bank.schedule_deposit(0.2, "branch0", 1, 50)        # same-ring op
    bank.schedule_withdraw(0.7, "branch1", 2, 25)       # cross-ring op
    bank.schedule_transfer(1.2, "branch0", 1, "branch1", 1, 40)
    bank.schedule_transfer(2.2, "branch1", 2, "branch0", 2, 10)
    cluster.run(until=4.0)

    assert bank.failed == []
    assert bank.replicas_agree()
    # The withdraw destroyed 25; transfers only moved money.
    totals = bank.branch_totals()
    branch0 = set(totals["branch0"].values()).pop()
    branch1 = set(totals["branch1"].values()).pop()
    assert branch0 == 200 + 50 - 40 + 10
    assert branch1 == 200 - 25 + 40 - 10
    assert branch0 + branch1 == bank.expected_total() + 50 - 25


def test_overdraft_transfer_is_a_cluster_wide_noop():
    cluster, bank = build_bank()
    bank.schedule_transfer(0.2, "branch0", 1, "branch1", 1, 10**6)
    cluster.run(until=1.5)
    # The refused withdraw is recorded; no replica issued the deposit.
    assert bank.failed and all(label.endswith(":w") for label, _ in bank.failed)
    assert bank.conserved()
    assert bank.replicas_agree()


def test_transfers_survive_a_byzantine_gateway():
    cluster, bank = build_bank(
        case=SurvivabilityCase.FULL_SURVIVABILITY, corrupt_gateway=True
    )
    bank.schedule_transfer(0.3, "branch0", 1, "branch1", 1, 30)
    bank.schedule_transfer(1.3, "branch1", 2, "branch0", 2, 20)
    cluster.run(until=3.5)

    assert bank.failed == []
    assert bank.replicas_agree()
    assert bank.conserved()  # a duplicated or lost hop would break this
    totals = bank.branch_totals()
    assert set(totals["branch0"].values()) == {200 - 30 + 20}
    assert set(totals["branch1"].values()) == {200 + 30 - 20}
