"""End-to-end forensics: live protocol runs feeding the flight recorders.

Covers the remaining ISSUE satellites that need a real simulation:
detection-latency scoring across a membership reconfiguration, full
intrusion-drill attribution, and byte-identical forensics JSON between
the ``optimized`` and ``baseline`` perf modes.
"""

import json

from repro import perf
from repro.obs import Observability
from repro.obs.forensics import (
    ForensicsHub,
    build_report,
    merge_timeline,
    run_intrusion_drill,
    score,
)
from repro.sim.faults import FaultPlan
from tests.support import MulticastWorld


def test_crash_detection_latency_across_reconfiguration():
    """A crash is attributed with positive latency and a measured reconfig."""
    plan = FaultPlan()
    plan.schedule_crash(2, 1.0)
    obs = Observability(forensics=ForensicsHub())
    world = MulticastWorld(num=4, seed=5, fault_plan=plan, obs=obs)
    world.start().run(until=5.0)

    # the ground truth was registered straight off the fault plan
    truth = obs.forensics.ground_truth()
    assert [f.fault_id for f in truth] == ["crash:P2@1"]

    card = score(obs.forensics)
    assert card["precision"] == 1.0
    assert card["recall"] == 1.0
    [entry] = card["per_fault"]
    assert entry["outcome"] == "detected"
    # suspicion can only follow the injection: timeouts must elapse first
    assert entry["detection_latency"] > 0.0
    assert entry["detection_time"] > 1.0
    # the eviction ran a reconfiguration, and the survivors measured it
    assert card["reconfig_seconds"]["count"] >= len(world.correct_ids())
    assert all(d > 0.0 for d in card["reconfig_seconds"]["values"])
    # the membership layer recorded the new epoch without the culprit
    timeline = merge_timeline(obs.forensics)
    installs = [e for e in timeline if e.etype == "membership_install"]
    assert any(2 in e.get("excluded", ()) for e in installs)


def test_clean_run_accuses_nobody():
    obs = Observability(forensics=ForensicsHub())
    world = MulticastWorld(num=4, seed=3, obs=obs)
    world.start()
    world.scheduler.at(0.2, world.endpoints[0].multicast, "g", b"hello")
    world.run(until=2.0)
    assert all(world.delivered_payloads(pid) == [b"hello"] for pid in range(4))
    card = score(obs.forensics)
    assert card["accused"] == []
    assert card["precision"] == 1.0 and card["recall"] == 1.0
    # steady state still leaves a causal record of the token's travels
    timeline = merge_timeline(obs.forensics)
    assert any(e.etype == "token_send" for e in timeline)
    assert any(e.etype == "delivery_commit" for e in timeline)


def test_intrusion_drill_attributes_every_fault():
    immune, obs, scenario = run_intrusion_drill()
    report = build_report(obs.forensics, scenario=scenario)
    card = report["scorecard"]
    assert card["precision"] == 1.0
    assert card["recall"] == 1.0
    assert card["false_positives"] == []
    outcomes = {f["fault_id"]: f["outcome"] for f in card["per_fault"]}
    assert outcomes == {
        "crash:P3@2.6": "detected",
        "mutant_token:P4@1.4": "detected",
        "value_fault:P2@0.46": "detected",
    }
    assert card["detection_latency"]["count"] == 3
    assert card["reconfig_seconds"]["count"] > 0
    # both intruders were evicted; the crash fell out of the membership
    survivors = set(scenario["surviving_members"])
    assert survivors.isdisjoint({2, 3, 4})
    # the divergence engine tied the value fault to P2 specifically
    divergent = {d["culprit"] for d in report["attribution"]["divergences"]}
    assert divergent == {2}


def test_forensics_json_byte_identical_across_perf_modes():
    """The whole report — timeline included — is perf-mode invariant."""
    blobs = {}
    for label, optimized in (("baseline", False), ("optimized", True)):
        with perf.mode(optimized):
            _, obs, scenario = run_intrusion_drill()
            report = build_report(obs.forensics, scenario=scenario)
        blobs[label] = json.dumps(report, sort_keys=True, indent=2)
    assert blobs["baseline"] == blobs["optimized"]
