"""Table 5: Byzantine fault detector properties, on real histories.

* Eventual strong Byzantine completeness: every processor that
  exhibited a fault ends up permanently suspected by every correct
  processor — exercised with a crash, an equivocation, and a
  replica value fault (via the Value_Fault_Suspect path).
* Eventual strong accuracy: no correct processor stays suspected —
  exercised by a clean run and by a lossy run where transient
  timeout suspicions must be absolved.
"""

from repro.bench.properties import detector_violations
from repro.multicast.adversary import MutantTokenBehaviour
from repro.sim.faults import FaultPlan, LinkFaults
from tests.support import MulticastWorld


def test_table5_completeness_for_crash_and_equivocation(benchmark, show):
    def run():
        plan = FaultPlan().schedule_crash(3, 0.6)
        world = MulticastWorld(num=5, fault_plan=plan, seed=41).start()
        behaviour = MutantTokenBehaviour(at_time=2.5).compromise(world.endpoints[1])
        world.scheduler.at(0.1, world.endpoints[0].multicast, "g", b"x")
        world.run(until=12.0)
        behaviour.restore()
        return world

    world = benchmark.pedantic(run, rounds=1, iterations=1)
    correct = {0, 2, 4}
    violations = detector_violations(world.trace, correct, faulty={1, 3})
    reasons = {
        pid: {
            suspect: sorted(world.endpoints[pid].detector.reasons_for(suspect))
            for suspect in (1, 3)
        }
        for pid in sorted(correct)
    }
    show("\nTable 5 completeness: final suspicion reasons per correct processor")
    for pid, by_suspect in reasons.items():
        show("  P%d: %s" % (pid, by_suspect))
    assert violations == [], violations


def test_table5_accuracy_clean_run(benchmark, show):
    def run():
        world = MulticastWorld(num=5, seed=42).start()
        for i in range(10):
            world.scheduler.at(
                0.1 + 0.05 * i, world.endpoints[i % 5].multicast, "g", b"m%d" % i
            )
        world.run(until=5.0)
        return world

    world = benchmark.pedantic(run, rounds=1, iterations=1)
    correct = set(range(5))
    violations = detector_violations(world.trace, correct)
    total_suspicions = world.trace.count("detector.suspect")
    show(
        "\nTable 5 accuracy (clean run): %d suspicion events, violations=%s"
        % (total_suspicions, violations)
    )
    assert violations == []


def test_table5_accuracy_under_loss_with_absolution(benchmark, show):
    def run():
        plan = FaultPlan(default=LinkFaults(loss_prob=0.2), active_until=1.5)
        world = MulticastWorld(num=4, fault_plan=plan, seed=43).start()
        for i in range(8):
            world.scheduler.at(
                0.1 + 0.05 * i, world.endpoints[0].multicast, "g", b"m%d" % i
            )
        world.run(until=8.0)
        return world

    world = benchmark.pedantic(run, rounds=1, iterations=1)
    correct = set(range(4))
    violations = detector_violations(world.trace, correct)
    suspicions = world.trace.count("detector.suspect")
    absolutions = world.trace.count("detector.absolve")
    show(
        "\nTable 5 accuracy under 20%% loss: %d transient suspicions, "
        "%d absolutions, final violations=%s" % (suspicions, absolutions, violations)
    )
    assert violations == []
