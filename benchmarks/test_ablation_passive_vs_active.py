"""A4: passive vs active replication — the paper's section 5 argument.

"Critical applications that must tolerate value faults, in addition to
crash faults, require majority voting and, thus, the use of active
replication for every object of the application."

Two measurements back the claim:

1. **Execution cost** — passive replication executes each operation
   once (plus checkpoints); active replication executes it at every
   replica.  Passive is cheaper.
2. **Value-fault survival** — inject the identical corrupt replica into
   both modes: active+voting delivers the correct value, passive
   delivers the corruption.  Cheap is not survivable.
"""

from repro.core.config import ImmuneConfig, SurvivabilityCase
from repro.core.immune import ImmuneSystem
from repro.core.replica import ValueFaultServant
from repro.orb.cdr import CdrDecoder, CdrEncoder
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef

WORK_IDL = InterfaceDef(
    "Worker", [OperationDef("work", [ParamDef("n", "long")], result="long")]
)


class WorkerServant:
    def __init__(self):
        self.total = 0
        self.executions = 0

    def work(self, n):
        self.executions += 1
        self.total += n
        return self.total

    def get_state(self):
        return CdrEncoder().write("longlong", self.total).getvalue()

    def set_state(self, state):
        self.total = CdrDecoder(state).read("longlong")


def run_mode(passive, corrupt_one, operations=8, seed=91):
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=seed)
    immune = ImmuneSystem(num_processors=6, config=config, trace_kinds=frozenset())
    servants = {}

    def factory(pid):
        servant = WorkerServant()
        servants[pid] = servant
        if corrupt_one and pid == 0:
            return ValueFaultServant(servant, corrupt_operations={"work"})
        return servant

    deploy = immune.deploy_passive if passive else immune.deploy
    server = deploy("worker", WORK_IDL, factory, [0, 1, 2])
    client = immune.deploy_client("driver", [3, 4, 5])
    immune.start()
    stubs = immune.client_stubs(client, WORK_IDL, server)
    replies = []
    for k in range(operations):

        def fire(k=k):
            for pid, stub in stubs:
                stub.work(1, reply_to=replies.append)

        immune.scheduler.at(0.1 + 0.15 * k, fire)
    immune.run(until=0.1 + 0.15 * operations + 3.0)
    executions = sum(s.executions for s in servants.values())
    return {
        "replies": replies,
        "executions": executions,
        "final": [servants[pid].total for pid in (0, 1, 2)],
    }


def test_passive_executes_once_active_executes_everywhere(benchmark, show):
    def run():
        return run_mode(passive=True, corrupt_one=False), run_mode(
            passive=False, corrupt_one=False
        )

    passive, active = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "\nA4 cost: 8 ops x 3 replicas — passive executed %d times, "
        "active executed %d times" % (passive["executions"], active["executions"])
    )
    assert passive["executions"] == 8
    assert active["executions"] == 24
    # Both modes answer every client replica correctly when healthy.
    assert sorted(passive["replies"])[-1] == 8
    assert sorted(active["replies"])[-1] == 8


def test_active_masks_value_fault_passive_does_not(benchmark, show):
    def run():
        return run_mode(passive=True, corrupt_one=True), run_mode(
            passive=False, corrupt_one=True
        )

    passive, active = benchmark.pedantic(run, rounds=1, iterations=1)
    passive_corrupted = sum(1 for r in passive["replies"] if r > 100)
    active_corrupted = sum(1 for r in active["replies"] if r > 100)
    show(
        "\nA4 survival: corrupt primary/replica on P0 — corrupted replies "
        "delivered: passive %d/%d, active %d/%d"
        % (
            passive_corrupted,
            len(passive["replies"]),
            active_corrupted,
            len(active["replies"]),
        )
    )
    assert passive_corrupted == len(passive["replies"]), (
        "the passive primary's corruption must reach clients"
    )
    assert active_corrupted == 0, "voting must mask every corrupted reply"
