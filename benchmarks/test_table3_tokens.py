"""Table 3: token fields required to cope with each fault type.

Structural regeneration: verifies that the token carries exactly the
fields the paper's Table 3 lists per fault class, that they round-trip
on the wire, and that each field-gated mechanism is exercised by the
matching fault (cross-referenced to the Table 1 drills).
"""

from repro.multicast.messages import decode_frame
from repro.multicast.token import Token

BASELINE_FIELDS = ["sender_id", "ring_id", "seq", "aru", "rtr_list"]
CORRUPTION_FIELDS = BASELINE_FIELDS + ["message_digest_list"]
MALICIOUS_FIELDS = CORRUPTION_FIELDS + ["signature", "prev_token_digest", "rtg_list"]


def make_token():
    return Token(
        sender_id=1,
        ring_id=2,
        visit=3,
        seq=40,
        aru=35,
        successor=2,
        rtr_list=[36, 38],
        rtg_list=[33],
        message_digest_list=[(39, b"x" * 16), (40, b"y" * 16)],
        prev_token_digest=b"p" * 16,
        signature=12345,
    )


def test_table3_all_fields_present_and_roundtrip(benchmark, show):
    token = benchmark.pedantic(make_token, rounds=1, iterations=1)
    decoded = decode_frame(token.encode())
    for field in MALICIOUS_FIELDS:
        assert hasattr(decoded, field), "token lacks Table 3 field %r" % field
        assert getattr(decoded, field) == getattr(token, field)
    show("\nTable 3: token fields by fault class")
    show("  message loss / receive omission / crash: %s" % ", ".join(BASELINE_FIELDS))
    show("  + message corruption:                    message_digest_list")
    show("  + malicious processor:                   signature, prev_token_digest, rtg_list")


def test_table3_signature_covers_every_field(show):
    """Flipping any field invalidates the signable bytes (so a signed
    token binds all of Table 3's content)."""
    import dataclasses  # noqa: F401  (documentation: fields are slots)

    base = make_token()
    reference = base.signable_bytes()
    mutations = {
        "sender_id": 9,
        "ring_id": 9,
        "visit": 9,
        "seq": 99,
        "aru": 1,
        "successor": 9,
        "rtr_list": [1],
        "rtg_list": [2],
        "message_digest_list": [(40, b"z" * 16)],
        "prev_token_digest": b"q" * 16,
    }
    changed = []
    for field, value in mutations.items():
        token = make_token()
        setattr(token, field, value)
        if token.signable_bytes() != reference:
            changed.append(field)
    assert sorted(changed) == sorted(mutations), "unbound fields: %s" % (
        set(mutations) - set(changed)
    )
    show("\nTable 3: the token signature binds every field: %s" % ", ".join(sorted(changed)))
