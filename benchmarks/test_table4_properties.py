"""Table 4: processor membership protocol properties, on real histories.

Crashes and a Byzantine equivocation drive reconfigurations; the Table
4 properties (uniqueness, self-inclusion, total order, eventual
exclusion, eventual inclusion) are asserted over every correct
processor's installation history.
"""

from repro.bench.properties import membership_violations
from repro.multicast.adversary import MutantTokenBehaviour
from repro.sim.faults import FaultPlan
from tests.support import MulticastWorld


def crash_history():
    plan = FaultPlan().schedule_crash(1, 0.5).schedule_crash(4, 2.5)
    world = MulticastWorld(num=6, fault_plan=plan, seed=31).start()
    for i in range(6):
        world.scheduler.at(
            0.1 + 0.1 * i, world.endpoints[0].multicast, "g", b"m%d" % i
        )
    world.run(until=10.0)
    return world


def equivocation_history():
    world = MulticastWorld(num=4, seed=32).start()
    behaviour = MutantTokenBehaviour(at_time=0.5).compromise(world.endpoints[2])
    world.scheduler.at(0.1, world.endpoints[0].multicast, "g", b"payload")
    world.run(until=8.0)
    behaviour.restore()
    return world


def test_table4_under_crashes(benchmark, show):
    world = benchmark.pedantic(crash_history, rounds=1, iterations=1)
    correct = {0, 2, 3, 5}
    violations = membership_violations(world.trace, correct, faulty={1, 4})
    installs = [
        (rec.proc, rec.ring, rec.members)
        for rec in world.trace.of_kind("membership.install")
    ]
    show("\nTable 4 (two staggered crashes): %d installations recorded" % len(installs))
    for pid in sorted(correct):
        history = [(r, m) for p, r, m in installs if p == pid]
        show("  P%d installed: %s" % (pid, history))
    assert violations == [], violations
    for pid in correct:
        assert world.endpoints[pid].members == (0, 2, 3, 5)


def test_table4_under_equivocation(benchmark, show):
    world = benchmark.pedantic(equivocation_history, rounds=1, iterations=1)
    correct = {0, 1, 3}
    violations = membership_violations(world.trace, correct, faulty={2})
    show(
        "\nTable 4 (mutant-token equivocation): final memberships %s, violations=%s"
        % ({pid: world.endpoints[pid].members for pid in sorted(correct)}, violations)
    )
    assert violations == [], violations
