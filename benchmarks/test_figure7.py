"""Figure 7: throughput of the four survivability cases.

Regenerates the paper's only performance figure: server throughput vs
the interval between consecutive one-way invocations at the client, for
cases 1 (no replication), 2 (+active replication), 3 (+voting and
digests), and 4 (+signed tokens).  The bench uses an abbreviated sweep;
``python -m repro.bench.figure7`` runs the full one.
"""

from repro.bench.figure7 import check_shape, run_figure7
from repro.bench.harness import format_series, run_packet_driver_case
from repro.core.config import SurvivabilityCase


def test_figure7_sweep(benchmark, show):
    results = benchmark.pedantic(
        lambda: run_figure7(quick=True), rounds=1, iterations=1
    )
    show("")
    show(format_series(results))
    problems = check_shape(results)
    assert problems == [], "figure 7 shape deviates: %s" % problems


def test_case4_is_signature_bound(benchmark, show):
    """The paper's headline cost: in case 4 "the greatest cost is that
    due to signature generation and verification"."""
    result = benchmark.pedantic(
        lambda: run_packet_driver_case(
            SurvivabilityCase.FULL_SURVIVABILITY, 200e-6, duration=0.2, warmup=0.1
        ),
        rounds=1,
        iterations=1,
    )
    cpu = result.cpu
    crypto = cpu.get("crypto.sign", 0) + cpu.get("crypto.verify", 0)
    other = sum(v for k, v in cpu.items() if not k.startswith("crypto."))
    show(
        "\ncase 4 CPU at the measured server: crypto %.0f ms vs other %.0f ms"
        % (1e3 * crypto, 1e3 * other)
    )
    assert crypto > other, "signatures must dominate CPU in case 4"


def test_case1_tracks_offered_load(benchmark, show):
    """Case 1 at a modest rate keeps up with the client entirely."""
    result = benchmark.pedantic(
        lambda: run_packet_driver_case(
            SurvivabilityCase.UNREPLICATED, 500e-6, duration=0.2, warmup=0.1
        ),
        rounds=1,
        iterations=1,
    )
    show(
        "\ncase 1 @500us: offered %.0f/s, measured %.0f/s"
        % (result.offered, result.throughput)
    )
    assert result.throughput >= 0.95 * result.offered
