"""Table 2: message delivery protocol properties, checked on histories.

Runs the delivery protocol under loss, corruption, and clean conditions
and asserts the Table 2 properties (integrity, authentication via the
uniqueness of contents, reliable delivery, total order) over the full
recorded history.
"""

from repro.bench.properties import delivery_violations
from repro.sim.faults import FaultPlan, LinkFaults
from tests.support import MulticastWorld


def run_history(seed, loss, corrupt, num=4, count=20):
    plan = FaultPlan(
        default=LinkFaults(loss_prob=loss, corrupt_prob=corrupt), active_until=1.5
    )
    world = MulticastWorld(num=num, fault_plan=plan, seed=seed).start()
    for i in range(count):
        sender = i % num
        world.scheduler.at(
            0.1 + 0.03 * i, world.endpoints[sender].multicast, "g", b"m%03d" % i
        )
    world.run(until=7.0)
    return world


def test_table2_under_loss_and_corruption(benchmark, show):
    world = benchmark.pedantic(
        lambda: run_history(seed=21, loss=0.15, corrupt=0.1), rounds=1, iterations=1
    )
    correct = set(range(4))
    violations = delivery_violations(world.trace, correct)
    delivered = [len(world.delivered[p]) for p in range(4)]
    show(
        "\nTable 2 (loss=15%%, corruption=10%%): delivered per processor %s, "
        "%d retransmissions, %d digest discards, violations=%s"
        % (
            delivered,
            sum(e.delivery.stats["retransmits"] for e in world.endpoints.values()),
            sum(e.delivery.stats["digest_discards"] for e in world.endpoints.values()),
            violations,
        )
    )
    assert violations == []
    assert all(d == 20 for d in delivered)


def test_table2_property_names(show):
    """Document the property-to-check mapping (one line per Table 2 row)."""
    rows = [
        ("Integrity", "every correct processor delivers each message at most once"),
        ("Authentication", "delivered contents come from the authenticated originator"),
        ("Uniqueness", "no two correct processors deliver different contents for one seq"),
        ("Reliable Delivery", "same membership history => same delivered set"),
        ("Total Order", "all correct processors deliver in the same seq order"),
    ]
    show("\nTable 2 properties checked by delivery_violations():")
    for name, meaning in rows:
        show("  %-18s %s" % (name, meaning))
