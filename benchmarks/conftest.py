"""Shared helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper.  The
simulation itself runs in virtual time; ``benchmark.pedantic`` with a
single round wraps each regeneration so pytest-benchmark reports the
wall-clock cost of reproducing each artifact, while the printed tables
carry the actual results.
"""

import pytest


@pytest.fixture
def show():
    """Print to the real stdout (bench tables must survive capture)."""

    def _show(text):
        capman = _capmanager()
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(text)
        else:
            print(text)

    return _show


_CAPMAN = None


def _capmanager():
    return _CAPMAN


def pytest_configure(config):
    global _CAPMAN
    _CAPMAN = config.pluginmanager.getplugin("capturemanager")
