"""A4: host-side crypto microbenchmarks.

Measures the *real* wall-clock cost of the from-scratch MD4 and RSA
implementations on the host.  These numbers do not feed the simulation
(which charges era-calibrated costs from the cost model); they sanity-
check the cost model's relative ordering: signing >> verification >>
digesting, and digesting scales with input size.
"""

import random

import pytest

from repro.crypto.costmodel import CryptoCostModel
from repro.crypto.md4 import md4_digest
from repro.crypto.rsa import generate_keypair


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(random.Random(7), modulus_bits=300)


def test_md4_64_bytes(benchmark):
    data = b"\xab" * 64
    digest = benchmark(md4_digest, data)
    assert len(digest) == 16


def test_md4_4096_bytes(benchmark):
    data = b"\xab" * 4096
    digest = benchmark(md4_digest, data)
    assert len(digest) == 16


def test_rsa_sign_300_bits(benchmark, keypair):
    digest = md4_digest(b"token")
    signature = benchmark(keypair.sign, digest)
    assert keypair.public.verify(digest, signature)


def test_rsa_verify_300_bits(benchmark, keypair):
    digest = md4_digest(b"token")
    signature = keypair.sign(digest)
    assert benchmark(lambda: keypair.public.verify(digest, signature))


def test_cost_model_relative_ordering():
    model = CryptoCostModel()
    assert model.sign_cost() > model.verify_cost() > model.digest_cost(64)
    assert model.digest_cost(4096) > model.digest_cost(64)
