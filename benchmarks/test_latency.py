"""Extension bench: invocation round-trip latency per survivability case.

Not a paper artifact (the paper reports throughput only), but the
latency hierarchy is the flip side of Figure 7's story: each mechanism
layer adds protocol latency, and signed tokens dominate — a two-way
invocation must wait for the token to carry its invocation *and* its
response, each visit paced by a 3 ms signature.
"""

from repro.bench.latency import format_latency, measure_latency
from repro.core.config import SurvivabilityCase


def test_latency_hierarchy(benchmark, show):
    def run():
        return [measure_latency(case, operations=12) for case in SurvivabilityCase]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    show("\n" + format_latency(results))
    by_case = {r.case: r.median for r in results}
    assert (
        by_case[SurvivabilityCase.UNREPLICATED]
        < by_case[SurvivabilityCase.ACTIVE_REPLICATION]
        <= by_case[SurvivabilityCase.MAJORITY_VOTING] * 1.5
    )
    # Signed tokens cost an order of magnitude in latency.
    assert by_case[SurvivabilityCase.FULL_SURVIVABILITY] > 5 * by_case[
        SurvivabilityCase.MAJORITY_VOTING
    ]
    # Every sample returned (no lost replies).
    assert all(r.count == 12 for r in results)
