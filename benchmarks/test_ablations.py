"""Ablation benches for the design choices the paper calls out.

* A1 — signature amortisation over j messages per token visit;
* A2 — RSA modulus size vs throughput;
* A3 — degree of replication vs throughput.
"""

from repro.bench.ablations import (
    format_sweep,
    sweep_key_size,
    sweep_replication_degree,
    sweep_token_batching,
)

_FAST = dict(duration=0.15, warmup=0.08)


def test_ablation_token_batching(benchmark, show):
    rows = benchmark.pedantic(
        lambda: sweep_token_batching(js=(1, 2, 6), **_FAST), rounds=1, iterations=1
    )
    show("\n" + format_sweep(
        "A1: case-4 throughput vs messages per token visit (j)", "j", rows
    ))
    throughputs = [r.throughput for _, r in rows]
    # One signature amortised over more messages => higher throughput.
    assert throughputs[-1] > 1.5 * throughputs[0], (
        "j=6 should beat j=1 by well over 1.5x, got %s" % throughputs
    )


def test_ablation_key_size(benchmark, show):
    rows = benchmark.pedantic(
        lambda: sweep_key_size(moduli=(256, 300, 512), **_FAST), rounds=1, iterations=1
    )
    show("\n" + format_sweep(
        "A2: case-4 throughput vs RSA modulus (bits)", "modulus", rows
    ))
    throughputs = [r.throughput for _, r in rows]
    assert throughputs[0] > throughputs[-1], (
        "bigger keys must cost throughput: %s" % throughputs
    )


def test_ablation_replication_degree(benchmark, show):
    rows = benchmark.pedantic(
        lambda: sweep_replication_degree(degrees=(2, 3, 5), interval=400e-6, **_FAST),
        rounds=1,
        iterations=1,
    )
    show("\n" + format_sweep(
        "A3: case-3 throughput vs degree of replication", "degree", rows
    ))
    throughputs = [r.throughput for _, r in rows]
    assert throughputs[0] >= throughputs[-1] * 0.9, (
        "more replicas should not increase throughput: %s" % throughputs
    )
