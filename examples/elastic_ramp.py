"""Elastic ramp: a bank that keeps its books while the cluster reshapes.

A four-branch audited bank starts on a **single ring**.  Three
staggered open-loop transfer streams ramp the offered load; the
autoscaler (fed from live ``rm.delivered_to_orb`` telemetry) notices
the hot ring and **splits** — growing a second ring at runtime and
live-migrating the rendezvous-chosen branches onto it — then a
scripted migration moves one more branch mid-traffic, and once the
ramp drains, the autoscaler **merges** everything back onto ring 0.

While one migration's hold window is open, a gateway replica on the
inter-ring link is corrupted (a directed Byzantine fault).  The run
then asserts the elasticity contract end to end:

* the bank-conservation identity held at *every* migration epoch —
  checked the instant each cutover landed, with money legitimately in
  flight;
* the run settled exactly-once: every scheduled transfer produced one
  voted withdraw and one voted deposit per teller replica, no amount
  was lost or duplicated anywhere in a migration window, and all
  replicas of every branch agree byte for byte;
* the forensic scorecard attributed the fault injected mid-migration
  with precision = recall = 1.0.

Run:  python examples/elastic_ramp.py
"""

from repro.elastic import AutoscalerPolicy, ElasticCluster, ElasticConfig
from repro.obs import Observability, SeriesSampler
from repro.obs.forensics import ForensicsHub, score
from repro.workloads.ramp import RampBank


def main():
    obs = Observability(forensics=ForensicsHub())
    config = ElasticConfig(
        initial_rings=1,
        max_rings=2,
        procs_per_ring=6,
        replication_degree=3,
        gateway_degree=3,
        seed=7,
    )
    cluster = ElasticCluster(config=config, obs=obs)
    ramp = RampBank(
        cluster, branches=4, streams=3, period=0.3, stream_stagger=0.5, start=0.3
    )
    sampler = SeriesSampler(
        obs.registry, period=0.1, families={"rm.delivered_to_orb"}
    )
    sampler.start(cluster.scheduler)
    cluster.enable_autoscaler(
        sampler,
        AutoscalerPolicy(
            decision_period=0.25,
            window=0.25,
            split_threshold=60.0,
            merge_threshold=5.0,
            cooldown=1.0,
        ),
    )

    # audit the books the instant every migration cutover lands
    audits = []
    cluster.coordinator.listeners.append(
        lambda record: audits.append((cluster.scheduler.now, record, ramp.audit()))
    )
    ramp.schedule(until=3.0)

    # one scripted migration mid-traffic, with a gateway replica going
    # Byzantine inside its hold window (ring-0 -> ring-1 direction)
    cluster.scheduler.at(
        2.2, lambda: cluster.migrate("bank.branch1", 1), label="demo.migrate"
    )
    cluster.scheduler.at(
        2.23,
        lambda: cluster.corrupt_gateway(0, 1, index=0, direction=0),
        label="demo.corrupt",
    )

    cluster.start()
    cluster.run(until=6.0)

    print("autoscaler decisions:")
    for at, action, detail in cluster.autoscaler.decisions:
        print("  t=%-5g %-6s %s" % (at, action, detail))
    print("migrations:")
    for m in cluster.coordinator.completed:
        print(
            "  epoch %d: %-14s ring %d -> %d  hold %.3f s  held %d"
            % (
                m["epoch"], m["group"], m["src_ring"], m["dst_ring"],
                m["hold_seconds"], m["held"],
            )
        )
    print("per-epoch conservation:")
    for at, record, audit in audits:
        print(
            "  t=%.3f epoch %d: conserved=%s grand=%d in_flight=%d"
            % (
                at, record["epoch"], audit["conserved"],
                audit["grand_total"], audit["in_flight"],
            )
        )
    verdict = ramp.settled()
    card = score(obs.forensics)
    print(
        "settled: ok=%s scheduled=%d failed=%d replicas_agree=%s"
        % (
            verdict["ok"], verdict["scheduled"], verdict["failed"],
            verdict["replicas_agree"],
        )
    )
    print("forensics: precision=%.2f recall=%.2f" % (card["precision"], card["recall"]))

    assert any(a == "split" for _, a, _ in cluster.autoscaler.decisions)
    assert len(cluster.coordinator.completed) >= 3
    assert audits and all(audit["conserved"] for _, _, audit in audits)
    assert verdict["ok"], verdict
    assert card["precision"] == 1.0 and card["recall"] == 1.0
    print("\nelastic ramp drill OK: books balanced through every reshape")


if __name__ == "__main__":
    main()
