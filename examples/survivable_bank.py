"""A survivable bank that keeps its invariants under replica corruption.

Scenario:

1. A three-way replicated bank service opens accounts and processes
   transfers, driven by a three-way replicated teller client.
2. The bank replica on P2 is *corrupted*: every result it computes is
   wrong (a value fault, Table 1's hardest replica fault).
3. Output majority voting masks every wrong answer; the value fault
   detector attributes the fault; the membership protocol evicts P2.
4. A fresh replica is reallocated onto spare processor P6 via ordered
   state transfer, restoring three-way replication.
5. The books still balance: total assets are conserved through it all.

Run:  python examples/survivable_bank.py
"""

from repro.core import ImmuneConfig, ImmuneSystem, SurvivabilityCase
from repro.core.replica import ValueFaultServant
from repro.workloads.bank import BANK_IDL, BankServant


def main():
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=2026)
    immune = ImmuneSystem(num_processors=7, config=config, trace_max_records=100_000)

    def factory(pid):
        servant = BankServant()
        if pid == 2:
            return ValueFaultServant(servant, corrupt_from=4)
        return servant

    bank = immune.deploy("bank", BANK_IDL, factory, on_procs=[0, 1, 2])
    teller = immune.deploy_client("teller", on_procs=[3, 4, 5])
    immune.start()

    stubs = immune.client_stubs(teller, BANK_IDL, bank)
    voted = {pid: [] for pid, _ in stubs}

    def everywhere(op, *args):
        for pid, stub in stubs:
            getattr(stub, op)(*args, reply_to=voted[pid].append)

    # Day 1: open accounts and move money around.
    everywhere("open_account", "alice", 1000)
    everywhere("open_account", "bob", 500)
    everywhere("transfer", 1, 2, 250)
    everywhere("withdraw", 2, 100)
    everywhere("deposit", 1, 40)
    everywhere("total_assets")
    immune.run(until=4.0)

    print("voted replies at each teller replica:")
    for pid in sorted(voted):
        print("  P%d: %r" % (pid, voted[pid]))
    assert all(v == voted[3] for v in voted.values()), "teller replicas diverged"
    assert voted[3][-1] == 1440, "money was created or destroyed!"

    members = immune.surviving_members()
    print("membership after the value faults surfaced:", list(members))
    assert 2 not in members, "corrupt P2 should have been evicted"
    print("bank group after eviction:", list(immune.group_members("bank")))

    # Recovery: reallocate the lost replica onto spare processor P6.
    immune.reallocate("bank", 6, BankServant.from_state)
    immune.run(until=8.0)
    print("bank group after reallocation:", list(immune.group_members("bank")))
    assert immune.group_members("bank") == (0, 1, 6)

    # The books still balance — including on the fresh replica.
    for pid in voted:
        voted[pid].clear()
    everywhere("total_assets")
    immune.run(until=12.0)
    finals = [voted[pid][-1] for pid in sorted(voted)]
    print("total assets after recovery, voted:", finals)
    assert finals == [1440, 1440, 1440]
    new_replica = bank.servants[6]
    print("fresh replica on P6 reports total:", new_replica.total_assets())
    assert new_replica.total_assets() == 1440
    print("OK: corruption masked, intruder evicted, replica restored, books balanced.")


if __name__ == "__main__":
    main()
