"""Quickstart: a survivable counter in ~40 lines.

Deploys a three-way actively replicated counter and a three-way
replicated client on six simulated processors, with full survivability
(majority voting + message digests + signed tokens), then invokes it —
exactly as the application would over a bare ORB.

Run:  python examples/quickstart.py
"""

from repro.core import ImmuneConfig, ImmuneSystem, SurvivabilityCase
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef

COUNTER_IDL = InterfaceDef(
    "Counter",
    [
        OperationDef("add", [ParamDef("amount", "long")], result="long"),
        OperationDef("log", [ParamDef("note", "string")], oneway=True),
    ],
)


class CounterServant:
    """An unmodified application object: no Immune code anywhere."""

    def __init__(self):
        self.value = 0
        self.notes = []

    def add(self, amount):
        self.value += amount
        return self.value

    def log(self, note):
        self.notes.append(note)


def main():
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=42)
    immune = ImmuneSystem(num_processors=6, config=config, trace_max_records=100_000)

    server = immune.deploy(
        "counter", COUNTER_IDL, lambda pid: CounterServant(), on_procs=[0, 1, 2]
    )
    client = immune.deploy_client("quickstart-client", on_procs=[3, 4, 5])
    immune.start()

    stubs = immune.client_stubs(client, COUNTER_IDL, server)
    replies = {pid: [] for pid, _ in stubs}
    for pid, stub in stubs:  # every client replica issues the same ops
        stub.log("hello survivable world")
        stub.add(40, reply_to=replies[pid].append)
        stub.add(2, reply_to=replies[pid].append)

    immune.run(until=3.0)

    print("processor membership:", list(immune.surviving_members()))
    print("counter object group:", list(immune.group_members("counter")))
    for pid, servant in sorted(server.servants.items()):
        print(
            "server replica on P%d: value=%d notes=%r" % (pid, servant.value, servant.notes)
        )
    for pid, got in sorted(replies.items()):
        print("client replica on P%d received voted replies: %r" % (pid, got))
    assert all(s.value == 42 for s in server.servants.values())
    assert all(got == [40, 42] for got in replies.values())
    print("OK: one logical invocation stream, replicated, voted, consistent.")


if __name__ == "__main__":
    main()
