"""Intrusion drill: a compromised processor attacks the protocols.

The intruder on P2 escalates through the attacks of Table 1:

1. t=0.5  sends *mutant tokens* — different signed tokens for the same
   visit to different halves of the ring (equivocation);
2. the correct processors exchange their stored token copies as
   evidence, provably convict P2, and reconfigure without it;
3. t after eviction: a second intruder on P4 *masquerades*, injecting a
   message that claims P0 sent it — the digest in the signed token
   never matches, so it is never delivered;
4. throughout, a replicated log service keeps accepting appends and
   every correct replica stays byte-identical.

The run carries a forensic flight recorder on every processor
(:mod:`repro.obs.forensics`); after the drill it prints the merged
fault-attribution timeline and the detector scorecard, and asserts the
detector attributed every detectable injected fault to the right
replica (the masquerade is *suppressed* by design, not attributed).

Run:  python examples/intrusion_drill.py
"""

from repro.core import ImmuneConfig, ImmuneSystem, SurvivabilityCase
from repro.multicast.adversary import MasqueradeBehaviour, MutantTokenBehaviour
from repro.obs import Observability
from repro.obs.forensics import ForensicsHub, build_report, render_report
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef

LOG_IDL = InterfaceDef(
    "AuditLog",
    [OperationDef("append", [ParamDef("entry", "string")], oneway=True)],
)


class AuditLogServant:
    def __init__(self):
        self.entries = []

    def append(self, entry):
        self.entries.append(entry)


def main():
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=99)
    obs = Observability(forensics=ForensicsHub())
    immune = ImmuneSystem(
        num_processors=6, config=config, trace_max_records=100_000, obs=obs
    )
    log = immune.deploy("audit", LOG_IDL, lambda pid: AuditLogServant(), [0, 1, 5])
    writer = immune.deploy_client("writer", [3, 4, 5])
    immune.start()

    mutant = MutantTokenBehaviour(at_time=0.5).compromise(immune.endpoints[2])
    MasqueradeBehaviour(
        victim_id=0, dest_group="audit", payload=b"FORGED ENTRY", at_time=4.0
    ).compromise(immune.endpoints[4])

    stubs = immune.client_stubs(writer, LOG_IDL, log)
    expected = []
    for k in range(8):
        entry = "audit-%d" % k

        def fire(entry=entry):
            for pid, stub in stubs:
                if not immune.processors[pid].crashed:
                    stub.append(entry)

        immune.scheduler.at(0.1 + k * 0.7, fire)
        expected.append(entry)

    immune.run(until=10.0)
    mutant.restore()

    report = build_report(
        obs.forensics,
        scenario={"scenario": "example-intrusion-drill", "seed": config.seed},
    )
    print(render_report(report))
    print()

    scorecard = report["scorecard"]
    assert scorecard["precision"] == 1.0, "no correct replica may be accused"
    assert scorecard["recall"] == 1.0, "the equivocator must be attributed"
    outcomes = {f["fault_id"]: f["outcome"] for f in scorecard["per_fault"]}
    assert outcomes["mutant_token:P2@0.5"] == "detected"
    assert outcomes["masquerade:P4@4"] == "suppressed"

    members = immune.surviving_members()
    print("final membership:", list(members))
    assert 2 not in members, "the equivocating intruder must be evicted"

    logs = {
        pid: servant.entries
        for pid, servant in log.servants.items()
        if pid in members
    }
    print("audit logs at correct replicas:")
    for pid in sorted(logs):
        print("  P%d: %d entries" % (pid, len(logs[pid])))
    reference = logs[min(logs)]
    assert all(entries == reference for entries in logs.values())
    assert reference == expected, "service must run through the intrusion"
    assert not any("FORGED" in e for e in reference), "masquerade must be suppressed"
    print("OK: equivocator convicted and evicted; forged message never delivered;")
    print("    the audit log stayed identical at every correct replica;")
    print("    forensics attributed the attack with precision and recall 1.0.")


if __name__ == "__main__":
    main()
