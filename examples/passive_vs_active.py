"""Passive vs active replication: why the Immune system votes.

The paper (section 5): "Critical applications that must tolerate value
faults, in addition to crash faults, require majority voting and, thus,
the use of active replication for every object of the application."

This example runs the *same* workload against the same corrupted
replica in both modes:

1. warm-passive replication — primary executes alone, backups follow by
   state checkpoint.  A third the execution cost; survives crashes;
   but the corrupted primary's wrong answers go straight to clients.
2. active replication with majority voting — every replica executes,
   responses are voted.  The corruption is outvoted, attributed by the
   value fault detectors, and the corrupt processor is evicted.

Run:  python examples/passive_vs_active.py
"""

from repro.core import ImmuneConfig, ImmuneSystem, SurvivabilityCase
from repro.core.replica import ValueFaultServant
from repro.orb.cdr import CdrDecoder, CdrEncoder
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef

PRICER_IDL = InterfaceDef(
    "Pricer", [OperationDef("quote", [ParamDef("units", "long")], result="long")]
)

UNIT_PRICE = 3


class PricerServant:
    def quote(self, units):
        return units * UNIT_PRICE

    def get_state(self):
        return CdrEncoder().write("long", UNIT_PRICE).getvalue()

    def set_state(self, state):
        CdrDecoder(state).read("long")


def run_mode(passive):
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=55)
    immune = ImmuneSystem(num_processors=6, config=config, trace_max_records=100_000)

    def factory(pid):
        servant = PricerServant()
        # P0 is compromised in both modes: every quote is inflated.
        return ValueFaultServant(servant) if pid == 0 else servant

    deploy = immune.deploy_passive if passive else immune.deploy
    pricer = deploy("pricer", PRICER_IDL, factory, on_procs=[0, 1, 2])
    desk = immune.deploy_client("trading-desk", on_procs=[3, 4, 5])
    immune.start()

    quotes = []
    for pid, stub in immune.client_stubs(desk, PRICER_IDL, pricer):
        stub.quote(100, reply_to=quotes.append)
    immune.run(until=5.0)
    return quotes, immune.surviving_members()


def main():
    honest = 100 * UNIT_PRICE

    passive_quotes, passive_members = run_mode(passive=True)
    print("warm-passive replication (primary on compromised P0):")
    print("  quotes delivered to the trading desk: %s" % passive_quotes)
    print("  membership afterwards: %s" % list(passive_members))
    assert all(q != honest for q in passive_quotes)
    print("  -> every quote is CORRUPT; nothing detected the fraud.\n")

    active_quotes, active_members = run_mode(passive=False)
    print("active replication with majority voting (same compromise):")
    print("  quotes delivered to the trading desk: %s" % active_quotes)
    print("  membership afterwards: %s" % list(active_members))
    assert all(q == honest for q in active_quotes)
    assert 0 not in active_members
    print("  -> every quote is correct, and the compromised processor")
    print("     was attributed by the value fault detector and evicted.")
    print()
    print("OK: value faults defeat passive replication; voting masks them.")


if __name__ == "__main__":
    main()
