"""Sensor fusion under fire — the paper's motivating application class.

Two replicated sensor feeds stream one-way track reports (exercising
input majority voting at rate), a replicated command console queries
fused positions (exercising output voting), and the fusion replica on
P2 is corrupted mid-run.  The console keeps seeing correct, voted
tracks throughout, and the corrupted processor is evicted.

Run:  python examples/sensor_fusion.py
"""

from repro.core import ImmuneConfig, ImmuneSystem, SurvivabilityCase
from repro.core.replica import ValueFaultServant
from repro.workloads.sensors import FUSION_IDL, FusionServant, scripted_track


def main():
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=7)
    immune = ImmuneSystem(num_processors=8, config=config, trace_max_records=100_000)

    def factory(pid):
        servant = FusionServant()
        if pid == 2:
            # Corrupt this replica's *answers* (track_position results).
            return ValueFaultServant(servant, corrupt_operations={"track_position"})
        return servant

    fusion = immune.deploy("fusion", FUSION_IDL, factory, on_procs=[0, 1, 2])
    radar = immune.deploy_client("radar", on_procs=[3, 4])
    lidar = immune.deploy_client("lidar", on_procs=[5, 6])
    console = immune.deploy_client("console", on_procs=[3, 7])
    immune.start()

    radar_stubs = immune.client_stubs(radar, FUSION_IDL, fusion)
    lidar_stubs = immune.client_stubs(lidar, FUSION_IDL, fusion)
    console_stubs = immune.client_stubs(console, FUSION_IDL, fusion)

    # Stream two deterministic tracks from both sensor groups.
    scheduler = immune.scheduler
    for step, (track, x, y) in enumerate(scripted_track(1, steps=10)):
        at = 0.05 + step * 0.01

        def fire(track=track, x=x, y=y):
            for _, stub in radar_stubs:
                stub.report("radar", track, x, y)
            for _, stub in lidar_stubs:
                stub.report("lidar", track, x + 10, y - 10)

        scheduler.at(at, fire)

    answers = {pid: [] for pid, _ in console_stubs}

    def query():
        for pid, stub in console_stubs:
            stub.track_position(1, reply_to=answers[pid].append)

    scheduler.at(1.0, query)
    immune.run(until=8.0)

    print("console replicas' voted view of track 1:")
    for pid in sorted(answers):
        print("  P%d: %r" % (pid, answers[pid]))
    assert answers[3] == answers[7] != []
    position = answers[3][0]
    # 10 steps x 2 sensor groups = 20 logical reports: the duplicate
    # copies from each group's 2 replicas were suppressed, not fused.
    assert position["reports"] == 20, "each report voted in exactly once"
    members = immune.surviving_members()
    print("membership after the corrupt fusion replica was attributed:", list(members))
    assert 2 not in members
    honest = {
        pid: servant
        for pid, servant in fusion.servants.items()
        if pid != 2
    }
    counts = {pid: s.track_count() for pid, s in honest.items()}
    print("track counts at honest fusion replicas:", counts)
    assert set(counts.values()) == {1}
    print("OK: 20 logical reports fused, corrupt replica outvoted and evicted.")


if __name__ == "__main__":
    main()
