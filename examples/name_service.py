"""A survivable service directory — CORBA bootstrap, hardened.

Every CORBA application starts by asking the Naming Service where
things are.  That makes the name service the juiciest target on the
network: corrupt one replica of it and every lookup can be redirected
to an attacker's object.  This example runs the classic bootstrap
pattern on the Immune system:

1. a three-way replicated Naming Service is deployed;
2. a greeter service registers itself under "services/greeter";
3. an application resolves the name and invokes the greeter —
   every step replicated and majority-voted;
4. meanwhile, the naming replica on P2 is corrupted and answers every
   resolve with a bogus reference; voting discards its answers, the
   value fault detectors attribute the corruption, and P2 is evicted.

Run:  python examples/name_service.py
"""

from repro.core import ImmuneConfig, ImmuneSystem, SurvivabilityCase
from repro.core.replica import ValueFaultServant
from repro.orb.idl import InterfaceDef, OperationDef, ParamDef
from repro.workloads.naming import NAMING_IDL, NamingClient, NamingServant

GREETER_IDL = InterfaceDef(
    "Greeter", [OperationDef("greet", [ParamDef("who", "string")], result="string")]
)


class GreeterServant:
    def greet(self, who):
        return "hello, %s" % who


def main():
    config = ImmuneConfig(case=SurvivabilityCase.FULL_SURVIVABILITY, seed=31)
    immune = ImmuneSystem(num_processors=6, config=config, trace_max_records=100_000)

    def naming_factory(pid):
        servant = NamingServant()
        if pid == 2:  # the compromised directory replica
            return ValueFaultServant(servant, corrupt_operations={"resolve"})
        return servant

    naming = immune.deploy("naming", NAMING_IDL, naming_factory, on_procs=[0, 1, 2])
    greeter = immune.deploy(
        "greeter", GREETER_IDL, lambda pid: GreeterServant(), on_procs=[3, 4, 5]
    )
    app = immune.deploy_client("app", on_procs=[0, 4, 5])
    immune.start()

    directory = NamingClient(immune, app, naming)
    greetings = []

    immune.scheduler.at(0.2, directory.bind, "services/greeter", greeter)
    immune.scheduler.at(
        1.5,
        directory.resolve_stub,
        "services/greeter",
        GREETER_IDL,
        lambda pid, stub: stub.greet("survivable world", reply_to=greetings.append),
    )
    immune.run(until=8.0)

    print("voted greetings at the app's replicas:", greetings)
    assert greetings == ["hello, survivable world"] * 3
    members = immune.surviving_members()
    print("membership after the corrupt directory replica was attributed:", list(members))
    assert 2 not in members
    print("OK: lookups voted, redirection attack defeated, intruder evicted.")


if __name__ == "__main__":
    main()
